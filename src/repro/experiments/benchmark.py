"""The ``repro bench`` speed harness: measured, tracked performance.

Two measurements, both written to ``BENCH_speed.json`` at the repo root
so the perf trajectory is tracked across PRs:

* **engine throughput** — one simulation run (events processed per
  second) on the optimized :class:`~repro.sim.engine.Simulation` versus
  the frozen pre-optimization baseline
  (:class:`~repro.sim._reference.ReferenceSimulation`), for a hook-free
  static protocol and for QCR.  Both engines must produce bit-identical
  results; the speedup is their wall-clock ratio.
* **streamed large-scale case** — a sparse many-node trace generated
  chunk-by-chunk straight to the binary on-disk format, memory-mapped,
  and simulated through the streamed columnar pipeline; records
  generation time, events/s, and the run-phase Python-heap peak
  (tracemalloc), and asserts the streamed run is bit-identical to the
  same columns processed in RAM.
* **parallel sweep** — a small :func:`~repro.experiments.run_comparison`
  sweep run serially and with ``n_workers`` processes; the statistics
  must be bit-identical and the speedup is the wall-clock ratio.  On a
  single-core container the parallel run cannot beat serial — the
  recorded ``cpu_count`` says how to read the number.
* **sweep amortization** — the trial-scoped sharing layer: a
  3-protocol sweep with the merged event stream built once per trial
  versus once per protocol (plain and faulted), a traced run on a
  prebuilt stream, the memoized-fingerprint cache probe, and the
  spilled-trace worker handoff.  Every sub-case asserts exact result
  equality; CI fails the quick run if merge-once is not faster or any
  case diverges.
* **allocation solver** — the lazy (CELF) heterogeneous greedy of
  :func:`~repro.allocation.greedy_heterogeneous` versus the textbook
  non-lazy greedy on a trace-sized instance.  Both must return the
  identical allocation; the report records wall time and the number of
  marginal-gain evaluations each performed (the lazy savings).

Timing numbers are noisy by nature; consumers (CI's perf-smoke job)
should fail on *crashes or identity violations*, never on timings.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
import tracemalloc
from typing import Any, Callable, Dict, Optional, Tuple, Union

import numpy as np

from ..allocation.submodular import (
    HeterogeneousProblem,
    greedy_heterogeneous,
)
from ..contacts import homogeneous_poisson_trace, load_binary
from ..demand import DemandModel, generate_requests
from ..faults import FaultSchedule
from ..obs.sinks import MemorySink
from ..obs.tracer import Tracer
from ..sim._reference import ReferenceSimulation
from ..sim.engine import Simulation, simulate
from ..sim.events import build_event_stream
from ..simcache import fingerprint_trace, run_key
from ..utility import StepUtility
from .artifacts import load_spilled_trace, spill_trial_trace
from .checkpoint import result_to_dict
from .reporting import render_table
from .runner import run_comparison
from .scenarios import (
    Scenario,
    homogeneous_scenario,
    large_scale_scenario,
    standard_protocols,
)

__all__ = [
    "run_speed_benchmark",
    "render_speed_report",
    "BENCH_FILENAME",
]

BENCH_FILENAME = "BENCH_speed.json"
_FORMAT = "repro-speed-benchmark"
_VERSION = 1

PathLike = Union[str, "os.PathLike[str]"]


def _results_identical(a, b) -> bool:
    """Exact (bit-level) equality of two SimulationResults.

    Manifests are provenance (they carry host timings that differ on
    every run) and are excluded from the comparison.
    """
    da, db = result_to_dict(a), result_to_dict(b)
    da.pop("manifest", None)
    db.pop("manifest", None)
    return da == db


def _time_run(build: Callable[[], Simulation], repeats: int) -> Tuple[float, Any]:
    """Best-of-*repeats* wall time of one ``Simulation.run()``."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        sim = build()
        start = time.perf_counter()
        result = sim.run()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def _time_run_pair(
    build_ref: Callable[[], Simulation],
    build_opt: Callable[[], Simulation],
    repeats: int,
) -> Tuple[float, float, Any, Any]:
    """Interleaved best-of-*repeats* timing of two engines.

    Alternating reference/optimized runs within each repeat keeps slow
    machine-load drift correlated between the two measurements, which
    stabilizes the reported ratio far better than timing each engine
    in its own sequential block.
    """
    ref_best = float("inf")
    opt_best = float("inf")
    ref_result = None
    opt_result = None
    for _ in range(repeats):
        sim = build_ref()
        start = time.perf_counter()
        ref_result = sim.run()
        ref_best = min(ref_best, time.perf_counter() - start)
        sim = build_opt()
        start = time.perf_counter()
        opt_result = sim.run()
        opt_best = min(opt_best, time.perf_counter() - start)
    return ref_best, opt_best, ref_result, opt_result


def _run_peak_mb(build: Callable[[], Simulation]) -> float:
    """Peak Python-heap (MB) of one run phase, measured by tracemalloc.

    Setup happens before tracing starts, so the figure isolates what the
    event pipeline itself allocates — the quantity the columnar layout
    is supposed to keep flat (and, for streamed runs, bounded by the
    merge chunk size).  Tracemalloc slows execution, which is why this
    is a separate run and never shares a process phase with the timers.
    """
    sim = build()
    tracemalloc.start()
    try:
        sim.run()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / 1e6


def _bench_engine_case(
    scenario: Scenario,
    protocol_name: str,
    *,
    seed: int,
    repeats: int,
) -> Dict[str, Any]:
    """Time optimized vs. reference engine on one (scenario, protocol)."""
    factories = standard_protocols(scenario, include=(protocol_name,))
    trace = scenario.trace_factory(seed)
    requests = generate_requests(
        scenario.demand, trace.n_nodes, trace.duration, seed=seed + 1
    )
    n_events = len(trace.times) + len(requests.times)

    def build(cls) -> Simulation:
        protocol = factories[protocol_name](trace, requests)
        return cls(
            trace, requests, scenario.config, protocol, seed=seed + 2
        )

    ref_seconds, opt_seconds, ref_result, opt_result = _time_run_pair(
        lambda: build(ReferenceSimulation), lambda: build(Simulation), repeats
    )
    return {
        "protocol": protocol_name,
        "n_events": n_events,
        "reference_seconds": ref_seconds,
        "optimized_seconds": opt_seconds,
        "reference_events_per_sec": n_events / ref_seconds,
        "optimized_events_per_sec": n_events / opt_seconds,
        "speedup": ref_seconds / opt_seconds,
        "bit_identical": _results_identical(ref_result, opt_result),
        "optimized_run_peak_mb": _run_peak_mb(lambda: build(Simulation)),
    }


def _bench_streamed_case(
    *,
    n_nodes: int,
    target_events: int,
    duration: float,
    seed: int,
    chunk_events: int,
    protocol_name: str = "UNI",
) -> Dict[str, Any]:
    """The large-scale columnar case: binary trace, memmap, streamed run.

    The trace is generated chunk-by-chunk straight to the binary format,
    reopened as a read-only memory map, and simulated through the
    streamed event pipeline.  One eager run on the same columns loaded
    into RAM checks that streaming is bit-identical to the in-memory
    path, and a tracemalloc run records the streamed run-phase heap peak
    (which stays bounded by the merge chunk, not the trace size).
    """
    scenario = large_scale_scenario(
        StepUtility(10.0),
        n_nodes=n_nodes,
        target_events=target_events,
        duration=duration,
    )
    factories = standard_protocols(scenario, include=(protocol_name,))
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        path = os.path.join(tmp, "trace.ctb")
        start = time.perf_counter()
        streamed_trace = homogeneous_poisson_trace(
            n_nodes,
            scenario.mu_estimate,
            duration,
            seed=seed,
            out=path,
            chunk_target=chunk_events,
        )
        generation_seconds = time.perf_counter() - start
        requests = generate_requests(
            scenario.demand,
            n_nodes,
            duration,
            seed=seed + 1,
            chunk_target=chunk_events,
        )
        eager_trace = load_binary(path, mmap=False, validate=False)
        n_events = len(streamed_trace.times) + len(requests.times)

        def build(trace) -> Simulation:
            protocol = factories[protocol_name](trace, requests)
            return Simulation(
                trace,
                requests,
                scenario.config,
                protocol,
                seed=seed + 2,
                chunk_events=chunk_events,
            )

        def build_eager() -> Simulation:
            protocol = factories[protocol_name](eager_trace, requests)
            return Simulation(
                eager_trace,
                requests,
                scenario.config,
                protocol,
                seed=seed + 2,
            )

        sim = build(streamed_trace)
        start = time.perf_counter()
        streamed_result = sim.run()
        streamed_seconds = time.perf_counter() - start
        eager_result = build_eager().run()
        peak_mb = _run_peak_mb(lambda: build(streamed_trace))
    return {
        "protocol": protocol_name,
        "n_nodes": n_nodes,
        "n_events": n_events,
        "chunk_events": chunk_events,
        "generation_seconds": generation_seconds,
        "streamed_seconds": streamed_seconds,
        "streamed_events_per_sec": n_events / streamed_seconds,
        "run_peak_mb": peak_mb,
        "bit_identical": _results_identical(streamed_result, eager_result),
    }


def _comparisons_identical(a, b) -> bool:
    """Exact equality of two ComparisonResults' per-protocol gain rates."""
    return set(a.stats) == set(b.stats) and all(
        np.array_equal(a.stats[name].gain_rates, b.stats[name].gain_rates)
        for name in a.stats
    )


def _bench_parallel_sweep(
    scenario: Scenario,
    *,
    n_trials: int,
    n_workers: int,
    base_seed: int,
) -> Dict[str, Any]:
    """Time a run_comparison sweep serially vs. on a worker pool.

    ``effective_workers`` clamps the requested pool to the container's
    CPU count: on a single-core host the pool cannot beat serial, the
    measured ratio is pure scheduling noise, and the report says so
    (``speedup_meaningful: false``) instead of publishing it as a win.
    """
    protocols = standard_protocols(scenario, include=("OPT", "QCR", "SQRT"))
    kwargs = dict(
        trace_factory=scenario.trace_factory,
        demand=scenario.demand,
        config=scenario.config,
        protocols=protocols,
        n_trials=n_trials,
        base_seed=base_seed,
        baseline="OPT",
    )
    start = time.perf_counter()
    serial = run_comparison(**kwargs)
    serial_seconds = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run_comparison(**kwargs, n_workers=n_workers)
    parallel_seconds = time.perf_counter() - start
    effective_workers = min(n_workers, os.cpu_count() or 1)
    return {
        "n_trials": n_trials,
        "n_workers": n_workers,
        "effective_workers": effective_workers,
        "n_runs": n_trials * len(protocols),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds,
        "speedup_meaningful": effective_workers > 1,
        "bit_identical": _comparisons_identical(serial, parallel),
    }


def _bench_sweep_amortization(
    scenario: Scenario,
    *,
    n_trials: int,
    base_seed: int,
    repeats: int = 2,
) -> Dict[str, Any]:
    """The trial-scoped amortization layer, measured end to end.

    Four sub-cases, every one gated on exact result equality:

    * **sweep** — a 3-protocol sweep with event-stream sharing off
      (merge + payload pass per protocol, the pre-amortization
      behaviour) versus on (one merge per trial, reused read-only);
      interleaved best-of-*repeats* like the engine timer.
    * **faulted_sweep** — the same comparison with node-churn faults,
      where payload columns are forbidden and the shared stream carries
      the fault events.
    * **traced_run** — one faulted, fully traced run on a prebuilt
      stream versus a fresh inline merge; both the result and the
      emitted trace-event sequence must match exactly.
    * **fingerprint_probe** / **worker_handoff** — microbenchmarks of
      the two other amortized quantities: a cache-key probe with
      memoized content fingerprints versus inline sha256 passes, and a
      spilled-trace ``np.memmap`` open versus regenerating the trace
      from its seed.
    """
    protocols = standard_protocols(scenario, include=("OPT", "SQRT", "UNI"))
    kwargs = dict(
        trace_factory=scenario.trace_factory,
        demand=scenario.demand,
        config=scenario.config,
        protocols=protocols,
        n_trials=n_trials,
        base_seed=base_seed,
        baseline="OPT",
    )
    per_protocol_seconds = float("inf")
    merge_once_seconds = float("inf")
    per_protocol = merged = None
    for _ in range(repeats):
        start = time.perf_counter()
        per_protocol = run_comparison(**kwargs, share_event_streams=False)
        per_protocol_seconds = min(
            per_protocol_seconds, time.perf_counter() - start
        )
        start = time.perf_counter()
        merged = run_comparison(**kwargs, share_event_streams=True)
        merge_once_seconds = min(
            merge_once_seconds, time.perf_counter() - start
        )
    sweep_case = {
        "n_trials": n_trials,
        "n_protocols": len(protocols),
        "merge_per_protocol_seconds": per_protocol_seconds,
        "merge_once_seconds": merge_once_seconds,
        "speedup": per_protocol_seconds / merge_once_seconds,
        "bit_identical": _comparisons_identical(per_protocol, merged),
    }

    # One realized trial for the faulted/traced/micro cases.
    trace = scenario.trace_factory(base_seed + 100)
    requests = generate_requests(
        scenario.demand, trace.n_nodes, trace.duration, seed=base_seed + 101
    )
    faults = FaultSchedule.node_churn(
        trace.n_nodes,
        crash_rate=0.002,
        mean_downtime=trace.duration / 10.0,
        duration=trace.duration,
        seed=base_seed + 102,
    )

    fault_kwargs = dict(kwargs)
    fault_kwargs["faults"] = faults
    fault_plain_seconds = float("inf")
    fault_shared_seconds = float("inf")
    fault_plain = fault_shared = None
    for _ in range(repeats):
        start = time.perf_counter()
        fault_plain = run_comparison(
            **fault_kwargs, share_event_streams=False
        )
        fault_plain_seconds = min(
            fault_plain_seconds, time.perf_counter() - start
        )
        start = time.perf_counter()
        fault_shared = run_comparison(
            **fault_kwargs, share_event_streams=True
        )
        fault_shared_seconds = min(
            fault_shared_seconds, time.perf_counter() - start
        )
    faulted_case = {
        "n_trials": n_trials,
        "merge_per_protocol_seconds": fault_plain_seconds,
        "merge_once_seconds": fault_shared_seconds,
        "speedup": fault_plain_seconds / fault_shared_seconds,
        "bit_identical": _comparisons_identical(fault_plain, fault_shared),
    }

    # Traced run: prebuilt stream vs. inline merge, faults + tracing on.
    stream = build_event_stream(trace, requests, scenario.config, faults)
    factory = protocols["UNI"]

    def traced(prebuilt):
        sink = MemorySink()
        result = simulate(
            trace,
            requests,
            scenario.config,
            factory(trace, requests),
            seed=base_seed + 103,
            faults=faults,
            tracer=Tracer(sink),
            prebuilt_events=prebuilt,
        )
        return result, sink.events

    fresh_result, fresh_events = traced(None)
    prebuilt_result, prebuilt_events = traced(stream)
    traced_case = {
        "protocol": "UNI",
        "n_trace_events": len(fresh_events),
        "bit_identical": (
            _results_identical(fresh_result, prebuilt_result)
            and fresh_events == prebuilt_events
        ),
    }

    # Cache-probe: inline sha256 passes vs. memoized fingerprints.
    protocol = factory(trace, requests)
    trace_fp = fingerprint_trace(trace)
    fresh_seconds = float("inf")
    memo_seconds = float("inf")
    fresh_key = memo_key = ""
    for _ in range(max(repeats, 3)):
        start = time.perf_counter()
        fresh_key = run_key(
            scenario.config, protocol, base_seed + 103, trace, requests
        )
        fresh_seconds = min(fresh_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        memo_key = run_key(
            scenario.config,
            protocol,
            base_seed + 103,
            trace,
            requests,
            trace_fingerprint=trace_fp,
        )
        memo_seconds = min(memo_seconds, time.perf_counter() - start)
    probe_case = {
        "fresh_probe_seconds": fresh_seconds,
        "memoized_probe_seconds": memo_seconds,
        "speedup": fresh_seconds / memo_seconds,
        "bit_identical": fresh_key == memo_key,
    }

    # Worker handoff: spill once + memmap open vs. regenerating.  The
    # sweep scenario's quick trace is tiny (regeneration is sub-ms and
    # beats even a memmap open), so this microbenchmark realizes a
    # worker-handoff-sized trace of its own — the regime the spill
    # exists for.
    def make_handoff_trace():
        return homogeneous_poisson_trace(
            400, 0.01, 300.0, seed=base_seed + 104
        )

    handoff_trace = make_handoff_trace()
    handoff_fp = fingerprint_trace(handoff_trace)
    with tempfile.TemporaryDirectory(prefix="repro-bench-spill-") as tmp:
        path = os.path.join(tmp, "trial.ctb")
        start = time.perf_counter()
        spill_trial_trace(handoff_trace, path, trace_fingerprint=handoff_fp)
        spill_seconds = time.perf_counter() - start
        start = time.perf_counter()
        regenerated = make_handoff_trace()
        regenerate_seconds = time.perf_counter() - start
        start = time.perf_counter()
        loaded, loaded_fp = load_spilled_trace(path)
        load_seconds = time.perf_counter() - start
        handoff_case = {
            "n_contacts": len(handoff_trace.times),
            "spill_seconds": spill_seconds,
            "regenerate_seconds": regenerate_seconds,
            "memmap_load_seconds": load_seconds,
            "speedup": regenerate_seconds / load_seconds,
            "bit_identical": (
                loaded_fp == handoff_fp
                and np.array_equal(
                    np.asarray(loaded.times), np.asarray(regenerated.times)
                )
            ),
        }

    return {
        "sweep": sweep_case,
        "faulted_sweep": faulted_case,
        "traced_run": traced_case,
        "fingerprint_probe": probe_case,
        "worker_handoff": handoff_case,
    }


def _bench_allocation(
    *,
    n_items: int,
    n_servers: int,
    n_clients: int,
    rho: int,
    seed: int,
) -> Dict[str, Any]:
    """Time CELF vs. the non-lazy greedy on one heterogeneous instance."""
    rng = np.random.default_rng(seed)
    demand = DemandModel.pareto(n_items, omega=1.0, total_rate=4.0)
    rates = rng.gamma(shape=2.0, scale=0.01, size=(n_servers, n_clients))
    problem = HeterogeneousProblem(
        demand=demand,
        utility=StepUtility(25.0),
        rate_matrix=rates,
        rho=rho,
    )
    start = time.perf_counter()
    lazy = greedy_heterogeneous(problem)
    lazy_seconds = time.perf_counter() - start
    start = time.perf_counter()
    naive = greedy_heterogeneous(problem, lazy=False)
    naive_seconds = time.perf_counter() - start
    return {
        "n_items": n_items,
        "n_servers": n_servers,
        "n_clients": n_clients,
        "rho": rho,
        "naive_seconds": naive_seconds,
        "celf_seconds": lazy_seconds,
        "speedup": naive_seconds / lazy_seconds,
        "naive_evaluations": naive.evaluations,
        "celf_evaluations": lazy.evaluations,
        "evaluations_saved_pct": 100.0
        * (1.0 - lazy.evaluations / naive.evaluations),
        "identical_allocation": bool(
            np.array_equal(lazy.allocation, naive.allocation)
        ),
    }


def run_speed_benchmark(
    *,
    quick: bool = False,
    n_workers: int = 4,
    repeats: Optional[int] = None,
    output: Optional[PathLike] = BENCH_FILENAME,
) -> Dict[str, Any]:
    """Run the full speed harness and (optionally) write *output*.

    ``quick`` shrinks horizons and trial counts for CI smoke runs; the
    structure of the report is identical at both scales.
    """
    if repeats is None:
        repeats = 3 if quick else 7
    duration = 400.0 if quick else 2000.0
    sweep_duration = 200.0 if quick else 600.0
    n_trials = 4 if quick else 8

    utility = StepUtility(10.0)
    engine_scenario = homogeneous_scenario(
        utility, duration=duration, record_interval=None
    )
    cases = [
        _bench_engine_case(
            engine_scenario, name, seed=11, repeats=repeats
        )
        for name in ("OPT", "QCR")
    ]
    streamed = _bench_streamed_case(
        n_nodes=10**4 if quick else 10**6,
        target_events=10**6 if quick else 10**7,
        duration=duration,
        seed=29,
        chunk_events=1 << 18,
    )
    sweep_scenario = homogeneous_scenario(
        utility, duration=sweep_duration, record_interval=None
    )
    parallel = _bench_parallel_sweep(
        sweep_scenario,
        n_trials=n_trials,
        n_workers=n_workers,
        base_seed=17,
    )
    amortization = _bench_sweep_amortization(
        sweep_scenario,
        n_trials=n_trials,
        base_seed=31,
        repeats=3,
    )
    allocation = _bench_allocation(
        n_items=20 if quick else 40,
        n_servers=15 if quick else 40,
        n_clients=30 if quick else 80,
        rho=3 if quick else 5,
        seed=23,
    )
    report: Dict[str, Any] = {
        "format": _FORMAT,
        "version": _VERSION,
        "scale": "quick" if quick else "full",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "engine": {
            "cases": cases,
            "min_speedup": min(case["speedup"] for case in cases),
        },
        "streamed": streamed,
        "parallel": parallel,
        "sweep_amortization": amortization,
        "allocation": allocation,
    }
    if output is not None:
        tmp_path = f"{os.fspath(output)}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        os.replace(tmp_path, output)
    return report


def render_speed_report(report: Dict[str, Any]) -> str:
    """An aligned text summary of a :func:`run_speed_benchmark` report."""
    engine_rows = [
        [
            case["protocol"],
            f"{case['reference_events_per_sec']:,.0f}",
            f"{case['optimized_events_per_sec']:,.0f}",
            f"{case['speedup']:.2f}x",
            f"{case['optimized_run_peak_mb']:.1f}",
            "yes" if case["bit_identical"] else "NO",
        ]
        for case in report["engine"]["cases"]
    ]
    engine_table = render_table(
        [
            "protocol",
            "ref ev/s",
            "opt ev/s",
            "speedup",
            "peak MB",
            "bit-identical",
        ],
        engine_rows,
        title=f"engine throughput ({report['scale']} scale)",
    )
    streamed = report["streamed"]
    streamed_table = render_table(
        ["metric", "value"],
        [
            ["nodes", f"{streamed['n_nodes']:,}"],
            ["events", f"{streamed['n_events']:,}"],
            ["protocol", streamed["protocol"]],
            ["generation", f"{streamed['generation_seconds']:.2f}s"],
            ["streamed run", f"{streamed['streamed_seconds']:.2f}s"],
            [
                "throughput",
                f"{streamed['streamed_events_per_sec']:,.0f} ev/s",
            ],
            ["run peak heap", f"{streamed['run_peak_mb']:.1f} MB"],
            ["chunk", f"{streamed['chunk_events']:,} events"],
            [
                "bit-identical",
                "yes" if streamed["bit_identical"] else "NO",
            ],
        ],
        title="streamed large-scale case (binary trace, memmap)",
    )
    par = report["parallel"]
    par_speedup = f"{par['speedup']:.2f}x"
    if not par.get("speedup_meaningful", True):
        par_speedup += " (noise: 1 effective worker)"
    parallel_table = render_table(
        ["metric", "value"],
        [
            ["runs", par["n_runs"]],
            ["workers", par["n_workers"]],
            ["effective workers", par.get("effective_workers", "?")],
            ["serial", f"{par['serial_seconds']:.2f}s"],
            ["parallel", f"{par['parallel_seconds']:.2f}s"],
            ["speedup", par_speedup],
            ["bit-identical", "yes" if par["bit_identical"] else "NO"],
            ["cpu count", report["cpu_count"]],
        ],
        title="parallel sweep",
    )
    amort = report["sweep_amortization"]
    sweep = amort["sweep"]
    faulted = amort["faulted_sweep"]
    traced = amort["traced_run"]
    probe = amort["fingerprint_probe"]
    handoff = amort["worker_handoff"]
    amort_table = render_table(
        ["metric", "value"],
        [
            [
                "sweep (plain)",
                f"{sweep['merge_per_protocol_seconds']:.2f}s per-protocol "
                f"/ {sweep['merge_once_seconds']:.2f}s merge-once "
                f"= {sweep['speedup']:.2f}x",
            ],
            [
                "sweep (faults)",
                f"{faulted['merge_per_protocol_seconds']:.2f}s / "
                f"{faulted['merge_once_seconds']:.2f}s "
                f"= {faulted['speedup']:.2f}x",
            ],
            [
                "traced prebuilt run",
                f"{traced['n_trace_events']:,} events, "
                + ("bit-identical" if traced["bit_identical"] else "DIVERGED"),
            ],
            [
                "cache probe",
                f"{1e3 * probe['fresh_probe_seconds']:.2f}ms fresh / "
                f"{1e3 * probe['memoized_probe_seconds']:.2f}ms memoized "
                f"= {probe['speedup']:.0f}x",
            ],
            [
                "worker handoff",
                f"{1e3 * handoff['regenerate_seconds']:.1f}ms regenerate / "
                f"{1e3 * handoff['memmap_load_seconds']:.1f}ms memmap "
                f"= {handoff['speedup']:.0f}x",
            ],
            [
                "bit-identical",
                "yes"
                if all(
                    case["bit_identical"]
                    for case in (sweep, faulted, traced, probe, handoff)
                )
                else "NO",
            ],
        ],
        title="sweep amortization (shared streams, memoized fingerprints)",
    )
    alloc = report["allocation"]
    size = (
        f"{alloc['n_items']} items x {alloc['n_servers']} servers, "
        f"rho={alloc['rho']}"
    )
    alloc_table = render_table(
        ["metric", "value"],
        [
            ["instance", size],
            ["naive greedy", f"{alloc['naive_seconds']:.3f}s"],
            ["lazy (CELF)", f"{alloc['celf_seconds']:.3f}s"],
            ["speedup", f"{alloc['speedup']:.2f}x"],
            ["naive evals", f"{alloc['naive_evaluations']:,}"],
            ["CELF evals", f"{alloc['celf_evaluations']:,}"],
            ["evals saved", f"{alloc['evaluations_saved_pct']:.1f}%"],
            [
                "identical allocation",
                "yes" if alloc["identical_allocation"] else "NO",
            ],
        ],
        title="allocation solver (lazy vs. naive greedy)",
    )
    return (
        engine_table
        + "\n\n"
        + streamed_table
        + "\n\n"
        + parallel_table
        + "\n\n"
        + amort_table
        + "\n\n"
        + alloc_table
    )
