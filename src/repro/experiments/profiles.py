"""Effort profiles: paper-scale vs. laptop-scale experiment parameters.

Every benchmark honors the ``REPRO_BENCH_SCALE`` environment variable:
``quick`` (default) runs reduced trials/horizons so the whole suite
finishes in minutes; ``full`` uses the paper's scale (15+ trials,
5000-minute horizons, dense sweeps).  Shapes and orderings are stable
across profiles; only confidence intervals tighten.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from ..errors import ConfigurationError

__all__ = ["EffortProfile", "current_profile"]

_ENV_VAR = "REPRO_BENCH_SCALE"
_WORKERS_ENV_VAR = "REPRO_BENCH_WORKERS"


@dataclass(frozen=True)
class EffortProfile:
    """Scaling knobs shared by the figure experiments."""

    label: str
    n_trials: int
    duration: float
    #: Power-impatience sweep (Figures 4-left and 6-left).
    power_alphas: Tuple[float, ...]
    #: Step-deadline sweep (Figures 4-right, 5, 6-middle), minutes.
    step_taus: Tuple[float, ...]
    #: Exponential-impatience sweep (Figure 6-right), 1/minutes.
    exp_nus: Tuple[float, ...]
    #: Process-pool width for run_comparison sweeps (None = serial).
    #: Results are bit-identical either way; this is purely wall-clock.
    n_workers: Optional[int] = None

    @classmethod
    def quick(cls) -> "EffortProfile":
        return cls(
            label="quick",
            n_trials=3,
            duration=2000.0,
            power_alphas=(-2.0, -1.0, 0.0, 0.5),
            step_taus=(1.0, 10.0, 100.0, 1000.0),
            exp_nus=(0.001, 0.01, 0.1, 1.0),
        )

    @classmethod
    def full(cls) -> "EffortProfile":
        return cls(
            label="full",
            n_trials=15,
            duration=5000.0,
            power_alphas=(-2.0, -1.5, -1.0, -0.5, 0.0, 0.25, 0.5, 0.75),
            step_taus=(1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0),
            exp_nus=(0.0001, 0.001, 0.01, 0.1, 1.0, 10.0),
        )

    @classmethod
    def from_env(cls) -> "EffortProfile":
        value = os.environ.get(_ENV_VAR, "quick").strip().lower()
        if value == "quick":
            profile = cls.quick()
        elif value == "full":
            profile = cls.full()
        else:
            raise ConfigurationError(
                f"{_ENV_VAR} must be 'quick' or 'full', got {value!r}"
            )
        workers = os.environ.get(_WORKERS_ENV_VAR, "").strip()
        if workers:
            try:
                n_workers = int(workers)
            except ValueError:
                raise ConfigurationError(
                    f"{_WORKERS_ENV_VAR} must be an integer, got {workers!r}"
                ) from None
            if n_workers < 1:
                raise ConfigurationError(
                    f"{_WORKERS_ENV_VAR} must be >= 1, got {n_workers}"
                )
            profile = replace(profile, n_workers=n_workers)
        return profile


def current_profile() -> EffortProfile:
    """The profile selected by the environment (default: quick)."""
    return EffortProfile.from_env()
