"""Experiment harness: scenarios, runners, and figure/table regeneration."""

from .figures import (
    Figure1Result,
    Figure2Result,
    Figure3Result,
    Figure4Result,
    Figure5Result,
    Figure6Result,
    SweepPanel,
    TimeSeriesPanel,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    recommended_timeout,
)
from .artifacts import TrialArtifacts, load_spilled_trace, spill_trial_trace
from .benchmark import BENCH_FILENAME, render_speed_report, run_speed_benchmark
from .checkpoint import ComparisonCheckpoint, result_from_dict, result_to_dict
from .profiles import EffortProfile, current_profile
from .reporting import render_loss_sweep, render_table
from .runner import (
    AlgorithmStats,
    ComparisonResult,
    TrialFailure,
    TrialInputs,
    percentile_interval,
    run_comparison,
)
from .scenarios import (
    Scenario,
    conference_scenario,
    default_qcr_config,
    homogeneous_scenario,
    run_scenario,
    standard_protocols,
    vehicular_scenario,
)
from .tables import Table1Verification, verify_table1

__all__ = [
    "EffortProfile",
    "current_profile",
    "Scenario",
    "homogeneous_scenario",
    "conference_scenario",
    "vehicular_scenario",
    "default_qcr_config",
    "standard_protocols",
    "run_scenario",
    "run_comparison",
    "ComparisonResult",
    "ComparisonCheckpoint",
    "result_to_dict",
    "result_from_dict",
    "AlgorithmStats",
    "TrialFailure",
    "TrialInputs",
    "TrialArtifacts",
    "load_spilled_trace",
    "spill_trial_trace",
    "percentile_interval",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "recommended_timeout",
    "Figure1Result",
    "Figure2Result",
    "Figure3Result",
    "Figure4Result",
    "Figure5Result",
    "Figure6Result",
    "SweepPanel",
    "TimeSeriesPanel",
    "verify_table1",
    "Table1Verification",
    "render_table",
    "render_loss_sweep",
    "run_speed_benchmark",
    "render_speed_report",
    "BENCH_FILENAME",
]
