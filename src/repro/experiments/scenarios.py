"""Evaluation scenarios (Section 6) and protocol suites.

Three scenario builders mirror the paper's three evaluation settings:

* :func:`homogeneous_scenario` — 50 nodes meeting pairwise at Poisson rate
  ``mu = 0.05`` (Section 6.2);
* :func:`conference_scenario` — the Infocom '06-like synthetic trace, with
  optional memoryless controls (Section 6.3 / Figure 5);
* :func:`vehicular_scenario` — the Cabspotting-like synthetic trace
  (Section 6.3 / Figure 6).

Each returns a :class:`Scenario` bundling the trace factory, demand, and
simulation config; :func:`standard_protocols` attaches the paper's
algorithm suite (OPT / QCR / QCRWOM / SQRT / PROP / UNI / DOM), with OPT
switching automatically between the Theorem-2 greedy (homogeneous) and
the submodular lazy greedy on trace-estimated rates (heterogeneous).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Dict, Optional, Sequence

import numpy as np

from ..allocation import HeterogeneousProblem, greedy_heterogeneous
from ..contacts import ContactTrace, homogeneous_poisson_trace, pair_rate_matrix
from ..contacts.synthetic import (
    ConferenceTraceConfig,
    VehicularTraceConfig,
    conference_trace,
    homogenized_poisson,
    rate_matched_poisson,
    vehicular_trace,
)
from ..demand import DemandModel, RequestSchedule
from ..errors import ConfigurationError
from ..protocols import (
    QCR,
    QCRConfig,
    StaticAllocation,
    dom_protocol,
    opt_protocol,
    prop_protocol,
    sqrt_protocol,
    uni_protocol,
)
from ..sim import SimulationConfig
from ..utility import DelayUtility
from .checkpoint import PathLike
from .runner import (
    ComparisonResult,
    ProgressLike,
    ProtocolFactory,
    RunCacheLike,
    run_comparison,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dist.executors import ExecutorLike

__all__ = [
    "Scenario",
    "homogeneous_scenario",
    "large_scale_scenario",
    "conference_scenario",
    "vehicular_scenario",
    "default_qcr_config",
    "standard_protocols",
    "run_scenario",
]

#: The paper's simulation defaults (Section 6.1/6.2).
N_NODES = 50
N_ITEMS = 50
RHO = 5
MU = 0.05
PARETO_OMEGA = 1.0
#: System-wide request rate (requests per minute); the paper does not
#: state its value — this yields ~one request per node per 12 minutes.
TOTAL_DEMAND = 4.0


@dataclass(frozen=True)
class Scenario:
    """A ready-to-run evaluation setting."""

    name: str
    trace_factory: Callable[[int], ContactTrace]
    demand: DemandModel
    config: SimulationConfig
    #: Meeting-rate constant handed to QCR and the homogeneous OPT.
    mu_estimate: float
    #: Whether OPT should use the trace-estimated heterogeneous greedy.
    heterogeneous: bool
    n_nodes: int = N_NODES

    def with_utility(self, utility: DelayUtility) -> "Scenario":
        """A copy of the scenario evaluating a different delay-utility."""
        return replace(self, config=replace(self.config, utility=utility))


def _base_config(
    utility: DelayUtility,
    *,
    n_items: int,
    rho: int,
    record_interval: Optional[float],
    window_length: float,
) -> SimulationConfig:
    return SimulationConfig(
        n_items=n_items,
        rho=rho,
        utility=utility,
        record_interval=record_interval,
        window_length=window_length,
        track_items=tuple(range(min(5, n_items))),
    )


def homogeneous_scenario(
    utility: DelayUtility,
    *,
    n_nodes: int = N_NODES,
    n_items: int = N_ITEMS,
    rho: int = RHO,
    mu: float = MU,
    duration: float = 5000.0,
    total_demand: float = TOTAL_DEMAND,
    omega: float = PARETO_OMEGA,
    record_interval: Optional[float] = 250.0,
    window_length: float = 60.0,
) -> Scenario:
    """The Section-6.2 homogeneous pure-P2P setting."""
    demand = DemandModel.pareto(n_items, omega=omega, total_rate=total_demand)
    return Scenario(
        name="homogeneous",
        trace_factory=lambda seed: homogeneous_poisson_trace(
            n_nodes, mu, duration, seed=seed
        ),
        demand=demand,
        config=_base_config(
            utility,
            n_items=n_items,
            rho=rho,
            record_interval=record_interval,
            window_length=window_length,
        ),
        mu_estimate=mu,
        heterogeneous=False,
        n_nodes=n_nodes,
    )


def large_scale_scenario(
    utility: DelayUtility,
    *,
    n_nodes: int,
    target_events: int,
    duration: float = 2000.0,
    n_items: int = N_ITEMS,
    rho: int = RHO,
    total_demand: float = TOTAL_DEMAND,
    omega: float = PARETO_OMEGA,
) -> Scenario:
    """A homogeneous setting scaled to *n_nodes* / ~*target_events*.

    The per-pair meeting rate is derived from the target contact count
    (``mu = target / (n_pairs * duration)``), which keeps the expected
    event volume fixed while the node population grows — the sparse
    large-*n* regime the columnar pipeline targets.  The returned
    scenario's ``trace_factory`` samples in RAM; callers at genuinely
    large scales should instead stream with
    ``homogeneous_poisson_trace(..., mu_estimate, out=path)``.
    """
    if n_nodes < 2:
        raise ConfigurationError(f"need >= 2 nodes, got {n_nodes}")
    if target_events < 1:
        raise ConfigurationError(
            f"target_events must be >= 1, got {target_events}"
        )
    n_pairs = n_nodes * (n_nodes - 1) // 2
    mu = target_events / (n_pairs * duration)
    scenario = homogeneous_scenario(
        utility,
        n_nodes=n_nodes,
        n_items=n_items,
        rho=rho,
        mu=mu,
        duration=duration,
        total_demand=total_demand,
        omega=omega,
        record_interval=None,
    )
    return replace(scenario, name="large-scale")


def conference_scenario(
    utility: DelayUtility,
    *,
    trace_config: ConferenceTraceConfig = ConferenceTraceConfig(),
    variant: str = "actual",
    rho: int = RHO,
    n_items: int = N_ITEMS,
    total_demand: float = TOTAL_DEMAND,
    omega: float = PARETO_OMEGA,
    record_interval: Optional[float] = 250.0,
    window_length: float = 60.0,
) -> Scenario:
    """The Infocom'06-like conference setting (Section 6.3, Figure 5).

    ``variant`` selects the trace: ``"actual"`` (heterogeneous + bursty +
    diurnal), ``"synthesized"`` (the paper's Fig. 5(c) control: identical
    pair rates, memoryless), or ``"rate_matched"`` (heterogeneous rates
    preserved, memoryless times).
    """
    if variant not in ("actual", "synthesized", "rate_matched"):
        raise ConfigurationError(f"unknown conference variant {variant!r}")

    def factory(seed: int) -> ContactTrace:
        seq = np.random.SeedSequence(seed)
        gen_seed, control_seed = (
            int(s.generate_state(1)[0]) for s in seq.spawn(2)
        )
        trace = conference_trace(trace_config, seed=gen_seed)
        if variant == "synthesized":
            return homogenized_poisson(trace, seed=control_seed)
        if variant == "rate_matched":
            return rate_matched_poisson(trace, seed=control_seed)
        return trace

    demand = DemandModel.pareto(n_items, omega=omega, total_rate=total_demand)
    mean_rate = trace_config.mean_pair_rate
    return Scenario(
        name=f"conference[{variant}]",
        trace_factory=factory,
        demand=demand,
        config=_base_config(
            utility,
            n_items=n_items,
            rho=rho,
            record_interval=record_interval,
            window_length=window_length,
        ),
        mu_estimate=mean_rate,
        heterogeneous=True,
        n_nodes=trace_config.n_nodes,
    )


def vehicular_scenario(
    utility: DelayUtility,
    *,
    trace_config: VehicularTraceConfig = VehicularTraceConfig(),
    variant: str = "actual",
    rho: int = RHO,
    n_items: int = N_ITEMS,
    total_demand: float = TOTAL_DEMAND,
    omega: float = PARETO_OMEGA,
    record_interval: Optional[float] = 250.0,
    window_length: float = 60.0,
) -> Scenario:
    """The Cabspotting-like vehicular setting (Section 6.3, Figure 6)."""
    if variant not in ("actual", "synthesized", "rate_matched"):
        raise ConfigurationError(f"unknown vehicular variant {variant!r}")

    def factory(seed: int) -> ContactTrace:
        seq = np.random.SeedSequence(seed)
        gen_seed, control_seed = (
            int(s.generate_state(1)[0]) for s in seq.spawn(2)
        )
        trace = vehicular_trace(trace_config, seed=gen_seed)
        if variant == "synthesized":
            return homogenized_poisson(trace, seed=control_seed)
        if variant == "rate_matched":
            return rate_matched_poisson(trace, seed=control_seed)
        return trace

    demand = DemandModel.pareto(n_items, omega=omega, total_rate=total_demand)
    # A rough mean pair rate for QCR's constant: estimated from geometry
    # (encounters per pair per minute); refined per-trace by OPT anyway.
    probe = vehicular_trace(trace_config, seed=0)
    return Scenario(
        name=f"vehicular[{variant}]",
        trace_factory=factory,
        demand=demand,
        config=_base_config(
            utility,
            n_items=n_items,
            rho=rho,
            record_interval=record_interval,
            window_length=window_length,
        ),
        mu_estimate=max(probe.mean_pair_rate, 1e-6),
        heterogeneous=True,
        n_nodes=trace_config.n_nodes,
    )


def default_qcr_config(
    utility: DelayUtility,
    n_servers: int = N_NODES,
    mu: float = MU,
) -> QCRConfig:
    """Reaction-function tuning used by the experiment harness.

    Property 2 fixes ``psi`` only up to a multiplicative constant.  For
    the step and exponential families ``psi`` is bounded (by ``1/e`` and
    ``1/4``), so the Table-1 constant works as-is.  The power family's
    ``psi ∝ y**(1-alpha)`` is unbounded: large query counts fire large
    replica bursts, and the resulting allocation variance is costly under
    a concave welfare.  The harness therefore scales the power-family
    reaction down and caps per-request bursts (see
    ``benchmarks/bench_ablation_variants.py`` for the supporting sweep).
    """
    # Probe the reaction at a representative query count (~2 rho, the
    # expected counter when items hold their fair cache share) and damp
    # the free Property-2 constant so a typical fulfillment creates a
    # sub-replica burst.  For the bounded step/exponential reactions this
    # keeps the Table-1 constant; for the unbounded power family it
    # shrinks as psi grows (supporting sweep:
    # benchmarks/bench_ablation_variants.py).
    target_burst = 0.15
    psi_probe = utility.psi(2.0 * RHO, n_servers, mu)
    scale = 1.0 if psi_probe <= target_burst else target_burst / psi_probe
    return QCRConfig(psi_scale=scale, max_mandates_per_request=25)


def standard_protocols(
    scenario: Scenario,
    *,
    qcr_config: Optional[QCRConfig] = None,
    include: Sequence[str] = ("OPT", "QCR", "SQRT", "PROP", "UNI", "DOM"),
    rate_floor: Optional[float] = None,
) -> Dict[str, ProtocolFactory]:
    """Build the paper's algorithm suite for *scenario*.

    ``include`` may also name ``"QCRWOM"`` (no mandate routing) and
    ``"PASSIVE"``.  *rate_floor* regularizes the heterogeneous OPT greedy
    for unbounded-cost utilities on sparse traces (default:
    one-over-trace-duration).
    """
    demand = scenario.demand
    utility = scenario.config.utility
    rho = scenario.config.rho
    qcr_cfg = qcr_config or default_qcr_config(
        utility, scenario.n_nodes, scenario.mu_estimate
    )

    def make_opt(trace: ContactTrace, _req: RequestSchedule):
        if not scenario.heterogeneous:
            return opt_protocol(
                demand,
                utility,
                scenario.mu_estimate,
                trace.n_nodes,
                rho,
                pure_p2p=utility.finite_at_zero,
                n_clients=trace.n_nodes,
            )
        rates = pair_rate_matrix(trace)
        floor = rate_floor
        if floor is None:
            # A floor is needed whenever a zero fulfillment rate has
            # infinite disutility (unbounded waiting costs) — on sparse
            # traces some (item, client) rates are genuinely zero.
            unbounded = not math.isfinite(
                utility.gain_never
            ) or not utility.finite_at_zero
            floor = 1.0 / trace.duration if unbounded else 0.0
        problem = HeterogeneousProblem(
            demand=demand,
            utility=utility,
            rate_matrix=rates,
            rho=rho,
            server_of_client=(
                np.arange(trace.n_nodes) if utility.finite_at_zero else None
            ),
            rate_floor=floor,
        )
        result = greedy_heterogeneous(problem)
        return StaticAllocation(allocation=result.allocation, name="OPT")

    factories: Dict[str, ProtocolFactory] = {}
    for name in include:
        if name == "OPT":
            factories[name] = make_opt
        elif name == "QCR":
            factories[name] = lambda tr, _rq: QCR(
                utility, scenario.mu_estimate, qcr_cfg
            )
        elif name == "QCRWOM":
            factories[name] = lambda tr, _rq: QCR(
                utility,
                scenario.mu_estimate,
                replace(qcr_cfg, mandate_routing=False),
            )
        elif name == "PASSIVE":
            from ..protocols import PassiveReplication

            factories[name] = lambda tr, _rq: PassiveReplication()
        elif name == "UNI":
            factories[name] = lambda tr, _rq: uni_protocol(
                demand, tr.n_nodes, rho
            )
        elif name == "SQRT":
            factories[name] = lambda tr, _rq: sqrt_protocol(
                demand, tr.n_nodes, rho
            )
        elif name == "PROP":
            factories[name] = lambda tr, _rq: prop_protocol(
                demand, tr.n_nodes, rho
            )
        elif name == "DOM":
            factories[name] = lambda tr, _rq: dom_protocol(
                demand, tr.n_nodes, rho
            )
        else:
            raise ConfigurationError(f"unknown protocol {name!r}")
    return factories


def run_scenario(
    scenario: Scenario,
    *,
    n_trials: int = 5,
    base_seed: int = 0,
    include: Sequence[str] = ("OPT", "QCR", "SQRT", "PROP", "UNI", "DOM"),
    qcr_config: Optional[QCRConfig] = None,
    n_workers: Optional[int] = None,
    progress: Optional[ProgressLike] = None,
    profile_dir: Optional[PathLike] = None,
    run_cache: RunCacheLike = None,
    executor: "ExecutorLike" = None,
) -> ComparisonResult:
    """Run the standard comparison on *scenario*.

    *n_workers* > 1 distributes the (trial, protocol) runs over a
    process pool with bit-identical statistics; *progress* and
    *profile_dir* enable the live reporter and per-worker cProfile
    dumps; *run_cache* reuses previously computed runs by content key;
    *executor* selects the execution backend, including the
    fault-tolerant distributed work queue (see
    :func:`repro.experiments.runner.run_comparison` and
    :mod:`repro.dist`).
    """
    return run_comparison(
        trace_factory=scenario.trace_factory,
        demand=scenario.demand,
        config=scenario.config,
        protocols=standard_protocols(
            scenario, qcr_config=qcr_config, include=include
        ),
        n_trials=n_trials,
        base_seed=base_seed,
        baseline="OPT" if "OPT" in include else include[0],
        n_workers=n_workers,
        progress=progress,
        profile_dir=profile_dir,
        run_cache=run_cache,
        executor=executor,
    )
