"""JSON checkpointing for long multi-trial comparison sweeps.

A :class:`ComparisonCheckpoint` persists every completed
``(trial, protocol)`` simulation of :func:`repro.experiments.run_comparison`
to a single JSON file, written atomically and durably (fsync on the
file and its directory) after each run.  Interrupting a
sweep (crash, preemption, Ctrl-C) and re-invoking it with the same
checkpoint path resumes exactly where it stopped: completed runs are
loaded back as full :class:`~repro.sim.metrics.SimulationResult` objects
(all floats round-trip through JSON exactly, so the resumed sweep's
statistics are bit-identical to an uninterrupted run's).

The file carries the sweep's identity (base seed, trial count, protocol
names); opening a checkpoint written by a different sweep raises
:class:`~repro.errors.ConfigurationError` instead of silently mixing
incompatible results.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any, Dict, Optional, Sequence, Union

import numpy as np

from ..durable import atomic_write_json
from ..errors import ConfigurationError
from ..sim.metrics import SimulationResult

__all__ = [
    "ComparisonCheckpoint",
    "result_to_dict",
    "result_from_dict",
]

PathLike = Union[str, "os.PathLike[str]"]

_FORMAT = "repro-comparison-checkpoint"
_VERSION = 1

#: SimulationResult fields holding integer arrays (the rest are float).
_INT_ARRAY_FIELDS = frozenset(
    {
        "window_fulfillments",
        "snapshot_counts",
        "snapshot_mandates",
        "snapshot_tracked",
        "final_counts",
    }
)


def result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    """Convert a :class:`SimulationResult` to a JSON-serializable dict."""
    payload: Dict[str, Any] = {}
    for spec in dataclasses.fields(SimulationResult):
        value = getattr(result, spec.name)
        payload[spec.name] = (
            value.tolist() if isinstance(value, np.ndarray) else value
        )
    return payload


def result_from_dict(payload: Dict[str, Any]) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` from :func:`result_to_dict`.

    Unknown keys are ignored (forward compatibility); missing keys fall
    back to the dataclass defaults where they exist.
    """
    kwargs: Dict[str, Any] = {}
    n_items: Optional[int] = None
    final = payload.get("final_counts")
    if isinstance(final, list):
        n_items = len(final)
    for spec in dataclasses.fields(SimulationResult):
        if spec.name not in payload:
            continue
        value = payload[spec.name]
        if isinstance(value, list):
            dtype = np.int64 if spec.name in _INT_ARRAY_FIELDS else float
            array = np.asarray(value, dtype=dtype)
            if (
                spec.name == "snapshot_counts"
                and array.size == 0
                and n_items is not None
            ):
                array = array.reshape(0, n_items)
            value = array
        kwargs[spec.name] = value
    return SimulationResult(**kwargs)


class ComparisonCheckpoint:
    """Incremental store of completed ``(trial, protocol)`` results."""

    def __init__(
        self,
        path: PathLike,
        *,
        base_seed: int,
        n_trials: int,
        protocols: Sequence[str],
    ) -> None:
        self.path = path
        self.base_seed = int(base_seed)
        self.n_trials = int(n_trials)
        self.protocols = sorted(protocols)
        self._completed: Dict[str, Dict[str, Any]] = {}
        #: Sweep-level provenance (config fingerprint, environment,
        #: timings — see :mod:`repro.obs.manifest`).  Preserved verbatim
        #: across open/save but never validated: it is metadata about a
        #: sweep, not part of its identity, so resuming on a different
        #: host or revision must keep working.
        self.manifest: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        path: PathLike,
        *,
        base_seed: int,
        n_trials: int,
        protocols: Sequence[str],
    ) -> "ComparisonCheckpoint":
        """Load *path* if it exists (validating identity) or start fresh."""
        checkpoint = cls(
            path, base_seed=base_seed, n_trials=n_trials, protocols=protocols
        )
        if not os.path.exists(path):
            return checkpoint
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise ConfigurationError(
                f"unreadable checkpoint {path}: {error}"
            ) from error
        if (
            not isinstance(data, dict)
            or data.get("format") != _FORMAT
            or data.get("version") != _VERSION
        ):
            raise ConfigurationError(
                f"{path} is not a version-{_VERSION} comparison checkpoint"
            )
        for key, expected in (
            ("base_seed", checkpoint.base_seed),
            ("n_trials", checkpoint.n_trials),
            ("protocols", checkpoint.protocols),
        ):
            if data.get(key) != expected:
                raise ConfigurationError(
                    f"checkpoint {path} was written by a different sweep: "
                    f"{key} is {data.get(key)!r}, expected {expected!r}"
                )
        completed = data.get("completed", {})
        if not isinstance(completed, dict):
            raise ConfigurationError(f"corrupt 'completed' map in {path}")
        for key, payload in completed.items():
            # Entry-level validation: a truncated/hand-edited file must
            # fail here with a clear message, not later inside get()
            # with a bare TypeError.
            if not isinstance(key, str) or not isinstance(payload, dict):
                raise ConfigurationError(
                    f"corrupt checkpoint entry {key!r} in {path}"
                )
        checkpoint._completed = completed
        manifest = data.get("manifest")
        if isinstance(manifest, dict):
            checkpoint.manifest = manifest
        return checkpoint

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @staticmethod
    def _key(trial: int, protocol: str) -> str:
        return f"{trial}:{protocol}"

    def __len__(self) -> int:
        return len(self._completed)

    def has(self, trial: int, protocol: str) -> bool:
        return self._key(trial, protocol) in self._completed

    def get(self, trial: int, protocol: str) -> SimulationResult:
        return result_from_dict(self._completed[self._key(trial, protocol)])

    def record(
        self, trial: int, protocol: str, result: SimulationResult
    ) -> None:
        """Store one completed run and persist the file atomically."""
        self._completed[self._key(trial, protocol)] = result_to_dict(result)
        self.save()

    def set_manifest(self, manifest: Optional[Dict[str, Any]]) -> None:
        """Attach sweep-level provenance and persist it immediately."""
        self.manifest = manifest
        self.save()

    def save(self) -> None:
        payload: Dict[str, Any] = {
            "format": _FORMAT,
            "version": _VERSION,
            "base_seed": self.base_seed,
            "n_trials": self.n_trials,
            "protocols": self.protocols,
            "completed": self._completed,
        }
        if self.manifest is not None:
            payload["manifest"] = self.manifest
        # Atomic + fsync (file and parent directory): a host power loss
        # mid-save must leave either the previous checkpoint or the new
        # one, never a truncated rename (see repro.durable).
        atomic_write_json(self.path, payload, fsync=True)
