"""Trial-scoped shared artifacts: realize once, reuse per protocol.

A sweep compares P protocols over the *same* realized trial — the same
contact trace, request schedule, and fault schedule.  Three per-trial
quantities are pure functions of those inputs and were historically
recomputed once per protocol:

* the **content fingerprints** the simcache key hashes (the trace hash
  is a full sha256 pass over every column — by far the dominant cache
  probe cost);
* the **merged event stream** (the stable lexsort interleaving of
  contacts, requests, and faults, plus the plain-mode payload columns);
* the **realized trace itself**, which parallel and distributed workers
  each regenerated from the trial seed.

:class:`TrialArtifacts` carries all three with memoization: build it
once per trial, hand it to every protocol's run, and each quantity is
computed at most once (or zero times — a fingerprint spilled alongside
a binary trace is trusted without re-hashing).  Results stay
bit-identical by construction: the fingerprints substitute string-equal
values into the same key derivation, and the engine validates a
prebuilt stream against the run's own objects before trusting it.

The spill helpers implement the zero-copy worker handoff: the parent
realizes a trial's trace once, writes it to the ``.ctb`` binary format
(content bytes identical to memory, so the fingerprint is preserved),
and workers ``np.memmap`` the columns instead of regenerating — the
engine's streamed mode then reads them lazily, also bit-identically.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Union

from ..contacts import ContactTrace
from ..contacts.binary import binary_trace_metadata, load_binary, save_binary
from ..demand import RequestSchedule
from ..faults import FaultSchedule
from ..sim.config import SimulationConfig
from ..sim.events import EventStream, build_event_stream, memmap_backed
from ..simcache import (
    fingerprint_faults,
    fingerprint_requests,
    fingerprint_trace,
)

__all__ = [
    "SPILL_FINGERPRINT_KEY",
    "TrialArtifacts",
    "load_spilled_trace",
    "spill_trial_trace",
]

PathLike = Union[str, "os.PathLike[str]"]

#: Header-metadata key under which a spilled trial trace carries its
#: precomputed simcache fingerprint.
SPILL_FINGERPRINT_KEY = "trace_fingerprint"


class TrialArtifacts:
    """One trial's shared inputs plus memoized derived artifacts.

    The attribute surface is a superset of the frozen ``TrialInputs``
    triple (*trace*, *requests*, *sim_seed*) the runner historically
    passed around, so every consumer keeps working; *faults* is the
    trial's resolved fault schedule (``None`` for fault-free trials)
    and must be the exact object later passed to the engine — the
    prebuilt event stream is built from it and validated by identity.

    Memoization is per-instance and lazy: nothing is computed until a
    consumer asks, and each artifact is computed at most once.  A
    *trace_fingerprint* passed at construction (recovered from a spill
    header) pre-seeds the memo, so workers never re-hash a spilled
    trace.
    """

    __slots__ = (
        "trace",
        "requests",
        "sim_seed",
        "faults",
        "share_event_stream",
        "_trace_fp",
        "_requests_fp",
        "_faults_fp",
        "_stream",
    )

    def __init__(
        self,
        trace: ContactTrace,
        requests: RequestSchedule,
        sim_seed: int,
        *,
        faults: Optional[FaultSchedule] = None,
        trace_fingerprint: Optional[str] = None,
        share_event_stream: bool = True,
    ) -> None:
        self.trace = trace
        self.requests = requests
        self.sim_seed = sim_seed
        self.faults = faults
        self.share_event_stream = share_event_stream
        self._trace_fp = trace_fingerprint
        self._requests_fp: Optional[str] = None
        self._faults_fp: Optional[str] = None
        self._stream: Optional[EventStream] = None

    def trace_fingerprint(self) -> str:
        """Memoized :func:`~repro.simcache.fingerprint_trace`."""
        if self._trace_fp is None:
            self._trace_fp = fingerprint_trace(self.trace)
        return self._trace_fp

    def requests_fingerprint(self) -> str:
        """Memoized :func:`~repro.simcache.fingerprint_requests`."""
        if self._requests_fp is None:
            self._requests_fp = fingerprint_requests(self.requests)
        return self._requests_fp

    def faults_fingerprint(self) -> str:
        """Memoized :func:`~repro.simcache.fingerprint_faults`."""
        if self._faults_fp is None:
            self._faults_fp = fingerprint_faults(self.faults)
        return self._faults_fp

    def event_stream(self, config: SimulationConfig) -> Optional[EventStream]:
        """The trial's merged event stream, built lazily at most once.

        Returns ``None`` — and the caller falls back to the engine's
        own merge — when stream sharing is disabled or the trace is
        memory-mapped: a memmapped trace selects the engine's streamed
        mode precisely so the merge never materializes, and an eager
        prebuilt stream would defeat that memory bound.

        The memo is keyed implicitly by the config fingerprint: a
        second call with an equivalent config reuses the stream, a
        different config rebuilds it (sweeps use one config, so this
        never triggers there).
        """
        if not self.share_event_stream:
            return None
        if memmap_backed(self.trace.times):
            return None
        stream = self._stream
        if (
            stream is None
            or stream.config_fingerprint != config.fingerprint()
        ):
            stream = build_event_stream(
                self.trace, self.requests, config, self.faults
            )
            self._stream = stream
        return stream

    def drop_event_stream(self) -> None:
        """Release the memoized stream (pool workers bound memory with
        this when they move on to another trial)."""
        self._stream = None


def spill_trial_trace(
    trace: ContactTrace,
    path: PathLike,
    *,
    trace_fingerprint: Optional[str] = None,
) -> str:
    """Write one realized trial trace to a ``.ctb`` spill at *path*.

    The binary column bytes equal the in-memory column bytes, so the
    spilled trace's content fingerprint is the original's; when
    *trace_fingerprint* is given it travels in the header metadata and
    :func:`load_spilled_trace` returns it without re-hashing.  Returns
    the (string) path for manifest/context records.
    """
    metadata: Optional[Dict[str, str]] = None
    if trace_fingerprint is not None:
        metadata = {SPILL_FINGERPRINT_KEY: trace_fingerprint}
    save_binary(trace, path, metadata=metadata)
    return os.fspath(path)


def load_spilled_trace(
    path: PathLike,
) -> tuple[ContactTrace, Optional[str]]:
    """Memory-map a spilled trial trace and its travelling fingerprint.

    The returned trace's columns are read-only ``np.memmap`` views —
    opening is O(1) in the trace size, workers share the page cache,
    and the engine streams the events block by block (bit-identically
    to eager).  Validation is skipped: spills are written by the
    sweep's own parent process in the same run.
    """
    trace = load_binary(path, mmap=True, validate=False)
    fingerprint = binary_trace_metadata(path).get(SPILL_FINGERPRINT_KEY)
    return trace, fingerprint
