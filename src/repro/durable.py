"""Crash-durable file primitives shared by the persistence layers.

Every on-disk artifact that must survive a worker being SIGKILLed — or
the host losing power — mid-write goes through this module: simulation
run-cache entries, comparison checkpoints, and the distributed sweep
queue's unit/lease/result files.  The contract is:

* *atomicity* — readers only ever observe the old file or the complete
  new file, never a partial write (temp file in the same directory +
  ``os.replace``);
* *durability* — with ``fsync=True`` (the default) the file's bytes are
  flushed to stable storage **before** the rename, and the parent
  directory entry is flushed after it, so a power loss cannot leave a
  truncated-but-renamed JSON file behind.  Filesystems that do not
  support directory fsync (some network mounts) degrade gracefully —
  durability weakens, atomicity does not.

Appends (:func:`append_line`) are single ``write`` calls on an
``O_APPEND`` descriptor: concurrent writers from multiple processes
interleave at line granularity, and a reader tolerating one torn final
line sees a consistent log.
"""

from __future__ import annotations

import json
import os
from typing import Any, Union

__all__ = [
    "append_line",
    "atomic_write_json",
    "atomic_write_text",
    "fsync_directory",
    "truncate_error_text",
]

PathLike = Union[str, "os.PathLike[str]"]

#: Byte budget for persisted error strings (tracebacks, exception
#: messages).  A recursive repr or a deeply nested traceback can reach
#: megabytes; anything persisted (checkpoints, queue failure records,
#: telemetry) is truncated to this budget at the source.
MAX_ERROR_BYTES = 4096

_TRUNCATION_MARKER = "... [truncated {dropped} bytes]"


def truncate_error_text(text: str, budget: int = MAX_ERROR_BYTES) -> str:
    """Bound *text* to *budget* UTF-8 bytes with an explicit marker.

    Keeps the head of the message (the exception type and the first
    frames carry the signal; the repeated tail of a recursive traceback
    does not).  Strings within budget pass through unchanged.
    """
    encoded = text.encode("utf-8", errors="replace")
    if len(encoded) <= budget:
        return text
    keep = max(budget - 64, 0)  # leave room for the marker
    head = encoded[:keep].decode("utf-8", errors="ignore")
    return head + _TRUNCATION_MARKER.format(dropped=len(encoded) - keep)


def fsync_directory(path: PathLike) -> None:
    """Flush directory entries at *path* to stable storage (best effort).

    Needed after ``os.replace`` so the *rename itself* survives a power
    loss.  Raises nothing: filesystems without directory-fd fsync
    (vfat, some NFS mounts) simply provide weaker durability.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(
    path: PathLike, text: str, *, fsync: bool = True
) -> None:
    """Atomically (and, by default, durably) replace *path* with *text*.

    The temp file lives in the target directory so the final
    ``os.replace`` never crosses a filesystem boundary.  Errors
    propagate as ``OSError`` after the temp file is cleaned up.
    """
    target = os.fspath(path)
    tmp_path = f"{target}.{os.getpid()}.tmp"
    try:
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(text)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp_path, target)
    except OSError:
        if os.path.exists(tmp_path):
            try:
                os.remove(tmp_path)
            except OSError:  # pragma: no cover - best effort
                pass
        raise
    if fsync:
        fsync_directory(os.path.dirname(target) or ".")


def atomic_write_json(
    path: PathLike, payload: Any, *, fsync: bool = True
) -> None:
    """Atomically serialize *payload* as JSON to *path* (see above)."""
    atomic_write_text(path, json.dumps(payload), fsync=fsync)


def append_line(path: PathLike, line: str, *, fsync: bool = False) -> None:
    """Append one newline-terminated line with a single ``write``.

    ``O_APPEND`` makes concurrent appends from multiple processes land
    whole (at ordinary line sizes) on POSIX filesystems; readers must
    still tolerate a torn final line after a crash.
    """
    data = (line.rstrip("\n") + "\n").encode("utf-8")
    fd = os.open(
        os.fspath(path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
    )
    try:
        os.write(fd, data)
        if fsync:
            os.fsync(fd)
    finally:
        os.close(fd)
