"""Assembly of the paper's Table 1.

Table 1 lists, for each delay-utility family, the differential utility
``c``, the homogeneous welfare term ``U``, the balance transform ``phi``
(Property 1), and the QCR reaction function ``psi`` (Property 2).  Here each
row pairs a concrete :class:`~repro.utility.base.DelayUtility` (whose
methods *are* the closed forms) with the symbolic expressions, so the
benchmark harness can print the table and cross-check every closed form
against the generic numeric integrals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .base import DelayUtility
from .exponential import ExponentialUtility
from .power import NegLogUtility, PowerUtility
from .step import StepUtility

__all__ = ["Table1Row", "table1_rows"]


@dataclass(frozen=True)
class Table1Row:
    """One column of the paper's Table 1 (a delay-utility family)."""

    label: str
    utility: DelayUtility
    h_expr: str
    c_expr: str
    gain_expr: str
    phi_expr: str
    psi_expr: str


def table1_rows(
    *,
    tau: float = 1.0,
    nu: float = 1.0,
    inverse_alpha: float = 1.5,
    negative_alphas: Sequence[float] = (0.5, 0.0, -1.0),
) -> List[Table1Row]:
    """Return the five families of Table 1 with concrete parameters.

    The inverse-power family uses ``1 < alpha < 2`` and each entry of
    *negative_alphas* must satisfy ``alpha < 1``.
    """
    rows = [
        Table1Row(
            label="Step function",
            utility=StepUtility(tau),
            h_expr="1{t <= tau}",
            c_expr="Dirac at t = tau",
            gain_expr="d_i (1 - exp(-mu tau x_i))",
            phi_expr="mu tau exp(-mu tau x)",
            psi_expr="(mu tau |S| / y) exp(-mu tau |S| / y)",
        ),
        Table1Row(
            label="Exponential decay",
            utility=ExponentialUtility(nu),
            h_expr="exp(-nu t)",
            c_expr="nu exp(-nu t)",
            gain_expr="d_i (1 - 1/(1 + mu x_i / nu))",
            phi_expr="(mu/nu) (1 + mu x / nu)^-2 nu",
            psi_expr="(nu y/(mu|S|) + 2 + mu|S|/(nu y))^-1",
        ),
        Table1Row(
            label=f"Inv. power (alpha={inverse_alpha:g})",
            utility=PowerUtility(inverse_alpha),
            h_expr="t^(1-a)/(a-1)",
            c_expr="t^-a",
            gain_expr="d_i Gamma(2-a)/(a-1) (mu x_i)^(a-1)",
            phi_expr="mu^(a-1) Gamma(2-a) x^(a-2)",
            psi_expr="(mu|S|)^(a-1) Gamma(2-a) y^(1-a)",
        ),
    ]
    for alpha in negative_alphas:
        rows.append(
            Table1Row(
                label=f"Neg. power (alpha={alpha:g})",
                utility=PowerUtility(alpha),
                h_expr="t^(1-a)/(a-1)",
                c_expr="t^-a",
                gain_expr="d_i Gamma(2-a)/(a-1) (mu x_i)^(a-1)",
                phi_expr="mu^(a-1) Gamma(2-a) x^(a-2)",
                psi_expr="(mu|S|)^(a-1) Gamma(2-a) y^(1-a)",
            )
        )
    rows.append(
        Table1Row(
            label="Neg. logarithm (alpha=1)",
            utility=NegLogUtility(),
            h_expr="-ln(t)",
            c_expr="1/t",
            gain_expr="d_i ln(x_i) + cst",
            phi_expr="1/x",
            psi_expr="constant",
        )
    )
    return rows
