"""Composite and empirical delay-utilities.

The paper's results hold for *any* monotone non-increasing delay-utility;
this module supplies the combinators a deployment would actually use:

* :class:`ScaledUtility` — ``a * h(t)`` (content with higher stakes);
* :class:`ShiftedUtility` — ``h(t) + b`` (a fixed participation reward;
  demonstrates that optimal allocations are invariant to constant shifts,
  since ``c`` and hence ``phi``/``psi`` are unchanged);
* :class:`MixtureUtility` — ``sum_k w_k h_k(t)`` (heterogeneous user
  sub-populations averaged, as Section 3.2 suggests);
* :class:`TabulatedUtility` — a piecewise-linear utility interpolated from
  measured ``(t, h)`` samples, e.g. survey feedback in the VideoForU story.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..errors import UtilityDomainError
from ..types import ArrayLike
from .base import DelayUtility
from .measures import DifferentialMeasure

__all__ = [
    "ScaledUtility",
    "ShiftedUtility",
    "MixtureUtility",
    "TabulatedUtility",
]


class ScaledUtility(DelayUtility):
    """Utility scaled by a positive factor: ``h(t) = factor * base(t)``."""

    def __init__(self, base: DelayUtility, factor: float) -> None:
        if not factor > 0:
            raise UtilityDomainError(f"factor must be > 0, got {factor}")
        self._base = base
        self._factor = float(factor)

    @property
    def base(self) -> DelayUtility:
        return self._base

    @property
    def factor(self) -> float:
        return self._factor

    @property
    def name(self) -> str:
        return f"{self._factor:g}*{self._base.name}"

    def __call__(self, t: ArrayLike) -> ArrayLike:
        return self._factor * self._base(t)

    @property
    def h0(self) -> float:
        return self._factor * self._base.h0

    @property
    def gain_never(self) -> float:
        return self._factor * self._base.gain_never

    @property
    def differential(self) -> DifferentialMeasure:
        return self._base.differential.scaled(self._factor)

    def laplace_c(self, rate: float) -> float:
        return self._factor * self._base.laplace_c(rate)

    def expected_gain(self, rate: float) -> float:
        return self._factor * self._base.expected_gain(rate)

    def phi(self, x: float, mu: float = 1.0) -> float:
        return self._factor * self._base.phi(x, mu)

    def phi_inverse(self, value: float, mu: float = 1.0) -> float:
        return self._base.phi_inverse(value / self._factor, mu)


class ShiftedUtility(DelayUtility):
    """Utility shifted by a constant: ``h(t) = base(t) + offset``.

    The differential measure — and therefore ``phi``, ``psi`` and the
    optimal allocation — is identical to the base utility's.
    """

    def __init__(self, base: DelayUtility, offset: float) -> None:
        self._base = base
        self._offset = float(offset)

    @property
    def base(self) -> DelayUtility:
        return self._base

    @property
    def offset(self) -> float:
        return self._offset

    @property
    def name(self) -> str:
        return f"{self._base.name}{self._offset:+g}"

    def __call__(self, t: ArrayLike) -> ArrayLike:
        return self._base(t) + self._offset

    @property
    def h0(self) -> float:
        return self._base.h0 + self._offset

    @property
    def gain_never(self) -> float:
        return self._base.gain_never + self._offset

    @property
    def differential(self) -> DifferentialMeasure:
        return self._base.differential

    def laplace_c(self, rate: float) -> float:
        return self._base.laplace_c(rate)

    def expected_gain(self, rate: float) -> float:
        if rate == 0:
            return self.gain_never
        return self._base.expected_gain(rate) + self._offset

    def phi(self, x: float, mu: float = 1.0) -> float:
        return self._base.phi(x, mu)

    def phi_inverse(self, value: float, mu: float = 1.0) -> float:
        return self._base.phi_inverse(value, mu)


class MixtureUtility(DelayUtility):
    """Weighted average of several delay-utilities.

    Models a population in which sub-population ``k`` (a fraction ``w_k`` of
    users) follows utility ``h_k``; the effective per-request gain is the
    population average ``sum_k w_k h_k(t)``.
    """

    def __init__(
        self,
        components: Sequence[Tuple[float, DelayUtility]],
    ) -> None:
        if not components:
            raise UtilityDomainError("mixture needs at least one component")
        for weight, _utility in components:
            if not weight > 0:
                raise UtilityDomainError(
                    f"mixture weights must be > 0, got {weight}"
                )
        self._components = tuple(
            (float(w), u) for w, u in components
        )

    @property
    def components(self) -> Tuple[Tuple[float, DelayUtility], ...]:
        return self._components

    @property
    def name(self) -> str:
        inner = " + ".join(
            f"{w:g}*{u.name}" for w, u in self._components
        )
        return f"mix({inner})"

    def __call__(self, t: ArrayLike) -> ArrayLike:
        return sum(w * u(t) for w, u in self._components)

    @property
    def h0(self) -> float:
        return sum(w * u.h0 for w, u in self._components)

    @property
    def gain_never(self) -> float:
        return sum(w * u.gain_never for w, u in self._components)

    @property
    def differential(self) -> DifferentialMeasure:
        return DifferentialMeasure.combine(
            [u.differential.scaled(w) for w, u in self._components]
        )

    def laplace_c(self, rate: float) -> float:
        return sum(w * u.laplace_c(rate) for w, u in self._components)

    def expected_gain(self, rate: float) -> float:
        return sum(w * u.expected_gain(rate) for w, u in self._components)

    def phi(self, x: float, mu: float = 1.0) -> float:
        return sum(w * u.phi(x, mu) for w, u in self._components)


class TabulatedUtility(DelayUtility):
    """Piecewise-linear utility interpolated from measured samples.

    Parameters
    ----------
    times:
        Strictly increasing sample times, starting at ``0``.
    values:
        Utility at each sample time; must be non-increasing.  Beyond the
        last sample the utility stays constant at ``values[-1]``.
    """

    def __init__(
        self, times: Sequence[float], values: Sequence[float]
    ) -> None:
        times_arr = np.asarray(times, dtype=float)
        values_arr = np.asarray(values, dtype=float)
        if times_arr.ndim != 1 or times_arr.shape != values_arr.shape:
            raise UtilityDomainError(
                "times and values must be 1-D arrays of equal length"
            )
        if len(times_arr) < 2:
            raise UtilityDomainError("need at least two samples")
        # repro-lint: ignore[RPL005] input validation: the table must be
        # anchored at exactly t=0 (callers pass the literal, not a sum).
        if times_arr[0] != 0.0:
            raise UtilityDomainError("first sample time must be 0")
        if not np.all(np.diff(times_arr) > 0):
            raise UtilityDomainError("sample times must be strictly increasing")
        if np.any(np.diff(values_arr) > 0):
            raise UtilityDomainError("utility samples must be non-increasing")
        self._times = times_arr
        self._values = values_arr

    @property
    def times(self) -> np.ndarray:
        return self._times.copy()

    @property
    def values(self) -> np.ndarray:
        return self._values.copy()

    @property
    def name(self) -> str:
        return f"tabulated({len(self._times)} pts)"

    def __call__(self, t: ArrayLike) -> ArrayLike:
        t = np.asarray(t, dtype=float)
        result = np.interp(t, self._times, self._values)
        return float(result) if result.ndim == 0 else result

    @property
    def h0(self) -> float:
        return float(self._values[0])

    @property
    def gain_never(self) -> float:
        return float(self._values[-1])

    @property
    def differential(self) -> DifferentialMeasure:
        times = self._times
        values = self._values
        slopes = np.diff(values) / np.diff(times)

        def density(t: float, _times=times, _slopes=slopes) -> float:
            if t <= 0 or t >= _times[-1]:
                return 0.0
            index = int(np.searchsorted(_times, t, side="right")) - 1
            return -float(_slopes[index])

        interior = tuple(float(x) for x in times[1:-1])
        return DifferentialMeasure(
            density=density,
            breakpoints=interior + (float(times[-1]),),
        )

    def laplace_c(self, rate: float) -> float:
        if rate < 0:
            raise UtilityDomainError(f"rate must be >= 0, got {rate}")
        # Exact piecewise integration: on each panel c is the constant
        # -slope, and the integral of exp(-rate*t) over [a, b] is
        # (exp(-rate*a) - exp(-rate*b)) / rate.
        times = self._times
        slopes = np.diff(self._values) / np.diff(times)
        if rate == 0:
            return float(self._values[0] - self._values[-1])
        decays = np.exp(-rate * times)
        panel = (decays[:-1] - decays[1:]) / rate
        return float(np.sum(-slopes * panel))

    def phi(self, x: float, mu: float = 1.0) -> float:
        if x < 0:
            raise UtilityDomainError(f"replica count must be >= 0, got {x}")
        if mu <= 0:
            raise UtilityDomainError(f"meeting rate must be > 0, got {mu}")
        # Exact per-panel integral of mu * t * exp(-mu*x*t) * (-slope).
        times = self._times
        slopes = np.diff(self._values) / np.diff(times)
        rate = mu * x
        if rate == 0:
            # integral of mu * t * c(t) dt — finite: c has bounded support.
            panel = (times[1:] ** 2 - times[:-1] ** 2) / 2.0
            return float(np.sum(-slopes * mu * panel))
        # antiderivative of t*exp(-r t) is -(t/r + 1/r^2) exp(-r t)
        def anti(t: np.ndarray) -> np.ndarray:
            return -(t / rate + 1.0 / rate**2) * np.exp(-rate * t)

        panel = anti(times[1:]) - anti(times[:-1])
        return float(np.sum(-slopes * mu * panel))
