"""Estimating the delay-utility from user feedback.

The paper's conclusion lists this as the missing piece for deployment:
"how to estimate the delay-utility function implicitly from user
feedback, instead of assuming that it is known."  This module closes the
loop for the advertising-revenue model, where ``h(t)`` is the probability
that a user still consumes content delivered after waiting ``t``:

1. the system logs feedback samples ``(delay, consumed)`` — whether each
   fulfilled request's content was actually consumed;
2. :func:`estimate_consumption_curve` turns the log into a monotone
   non-increasing survival-style curve via isotonic regression (pool
   adjacent violators), which is the maximum-likelihood monotone fit for
   Bernoulli outcomes;
3. the result is a :class:`~repro.utility.composite.TabulatedUtility`,
   immediately usable for welfare computation, optimal allocation, and —
   through Property 2 — as QCR's reaction function.

No external ML dependency: PAVA is ~30 lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..errors import UtilityDomainError
from ..types import FloatArray, SeedLike, as_rng
from .base import DelayUtility
from .composite import TabulatedUtility

__all__ = [
    "FeedbackSample",
    "pava_decreasing",
    "estimate_consumption_curve",
    "synthesize_feedback",
]


@dataclass(frozen=True)
class FeedbackSample:
    """One logged fulfillment: the wait and whether it was consumed."""

    delay: float
    consumed: bool


def pava_decreasing(
    values: FloatArray, weights: FloatArray
) -> FloatArray:
    """Weighted isotonic regression for a *non-increasing* fit.

    Pool-adjacent-violators: merge neighboring blocks whose means
    increase, replacing them with their weighted mean, until the block
    means are non-increasing.  Returns the fitted value per input point.
    """
    values = np.asarray(values, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if values.shape != weights.shape or values.ndim != 1:
        raise UtilityDomainError("values and weights must be equal-length 1-D")
    if np.any(weights <= 0):
        raise UtilityDomainError("weights must be > 0")

    # Blocks as (mean, weight, count) triples on a stack.
    means: list = []
    block_weights: list = []
    counts: list = []
    for value, weight in zip(values, weights):
        means.append(float(value))
        block_weights.append(float(weight))
        counts.append(1)
        # Non-increasing: merge while the previous block is *smaller*.
        while len(means) > 1 and means[-2] < means[-1]:
            total = block_weights[-2] + block_weights[-1]
            merged = (
                means[-2] * block_weights[-2] + means[-1] * block_weights[-1]
            ) / total
            means[-2:] = [merged]
            block_weights[-2:] = [total]
            counts[-2:] = [counts[-2] + counts[-1]]
    fitted = np.empty(len(values))
    index = 0
    for mean, count in zip(means, counts):
        fitted[index : index + count] = mean
        index += count
    return fitted


def estimate_consumption_curve(
    samples: Sequence[FeedbackSample],
    *,
    n_bins: int = 12,
    min_bin_count: int = 5,
) -> TabulatedUtility:
    """Fit a monotone consumption-probability curve from feedback.

    Samples are grouped into (roughly) equal-population delay bins; the
    per-bin consumption frequencies are made monotone by PAVA; the
    resulting step curve is returned as a piecewise-linear
    :class:`TabulatedUtility` anchored at ``h(0) = first fitted value``.

    Raises :class:`~repro.errors.UtilityDomainError` when there is too
    little data to fit anything (fewer than ``2 * min_bin_count``
    samples).
    """
    if len(samples) < 2 * min_bin_count:
        raise UtilityDomainError(
            f"need at least {2 * min_bin_count} feedback samples, "
            f"got {len(samples)}"
        )
    delays = np.array([s.delay for s in samples], dtype=float)
    outcomes = np.array([1.0 if s.consumed else 0.0 for s in samples])
    if np.any(delays < 0):
        raise UtilityDomainError("delays must be >= 0")
    order = np.argsort(delays, kind="stable")
    delays, outcomes = delays[order], outcomes[order]

    n_bins = max(1, min(n_bins, len(samples) // min_bin_count))
    edges = np.array_split(np.arange(len(samples)), n_bins)
    centers = []
    frequencies = []
    bin_weights = []
    for indices in edges:
        if len(indices) == 0:
            continue
        centers.append(float(delays[indices].mean()))
        frequencies.append(float(outcomes[indices].mean()))
        bin_weights.append(float(len(indices)))
    fitted = pava_decreasing(
        np.asarray(frequencies), np.asarray(bin_weights)
    )

    # Build strictly increasing knots (merge duplicate centers).
    knot_times = [0.0]
    knot_values = [float(fitted[0])]
    for center, value in zip(centers, fitted):
        if center <= knot_times[-1]:
            continue
        knot_times.append(center)
        knot_values.append(float(min(value, knot_values[-1])))
    if len(knot_times) < 2:
        raise UtilityDomainError("feedback delays are degenerate")
    # Close the curve: beyond the last observation the probability is
    # taken to keep its final fitted level (TabulatedUtility extends the
    # last value as a constant).
    return TabulatedUtility(knot_times, knot_values)


def synthesize_feedback(
    true_utility: DelayUtility,
    n_samples: int,
    *,
    delay_scale: float = 10.0,
    seed: SeedLike = None,
) -> Tuple[FeedbackSample, ...]:
    """Simulate a feedback log from a known consumption-probability curve.

    Delays are exponential with mean *delay_scale*; each sample is
    consumed with probability ``h(delay)`` (clipped to [0, 1]).  Used to
    test the estimator end-to-end against a ground truth.
    """
    if n_samples <= 0:
        raise UtilityDomainError(f"n_samples must be > 0, got {n_samples}")
    rng = as_rng(seed)
    delays = rng.exponential(delay_scale, size=n_samples)
    probabilities = np.clip(np.asarray(true_utility(delays)), 0.0, 1.0)
    consumed = rng.random(n_samples) < probabilities
    return tuple(
        FeedbackSample(float(d), bool(c))
        for d, c in zip(delays, consumed)
    )
