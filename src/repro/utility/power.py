"""Power-family delay-utilities: time-critical information and waiting cost.

``h_alpha(t) = t**(1 - alpha) / (alpha - 1)`` with ``alpha < 2`` (paper,
Section 3.2):

* ``1 < alpha < 2`` — *inverse power*, time-critical information: a large
  reward for prompt fulfillment, ``h(0+) = inf`` (dedicated-node scenarios
  only).
* ``alpha < 1`` — *negative power*, waiting cost: ``h(0+) = 0`` and the
  utility grows increasingly negative with waiting time (``alpha = 0`` is a
  linear waiting cost ``h(t) = -t``).
* ``alpha = 1`` — the *negative logarithm* limit ``h(t) = -ln(t)``, provided
  by :class:`NegLogUtility`.

Table-1 closed forms (continuous time, homogeneous rate ``mu``):

===============  =====================================================
``c(t)``         ``t**-alpha``
``U`` term       ``d_i * Gamma(2-alpha)/(alpha-1) * (mu*x_i)**(alpha-1)``
``phi(x)``       ``mu**(alpha-1) * Gamma(2-alpha) * x**(alpha-2)``
``psi(y)``       ``(mu*|S|)**(alpha-1) * Gamma(2-alpha) * y**(1-alpha)``
===============  =====================================================

The optimal relaxed allocation is the power law
``x_i ∝ d_i**(1/(2-alpha))`` (Figure 2): uniform as ``alpha -> -inf``,
proportional at ``alpha = 1``, square-root at ``alpha = 0``, and fully
skewed towards popular items as ``alpha -> 2``.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import UtilityDomainError
from ..types import ArrayLike
from .base import DelayUtility
from .measures import DifferentialMeasure

__all__ = ["PowerUtility", "NegLogUtility", "power_family"]

_EULER_GAMMA = 0.5772156649015329


class PowerUtility(DelayUtility):
    """Power-law utility ``h(t) = t**(1-alpha) / (alpha - 1)``.

    Parameters
    ----------
    alpha:
        Impatience exponent, ``alpha < 2`` and ``alpha != 1``.  Use
        :class:`NegLogUtility` (or :func:`power_family`) for ``alpha = 1``.
    """

    def __init__(self, alpha: float) -> None:
        if alpha >= 2:
            raise UtilityDomainError(
                f"power utility requires alpha < 2 (welfare diverges); got {alpha}"
            )
        if alpha == 1:
            raise UtilityDomainError(
                "alpha = 1 is the negative-logarithm limit; use NegLogUtility"
            )
        self._alpha = float(alpha)

    @property
    def alpha(self) -> float:
        """The impatience exponent."""
        return self._alpha

    @property
    def name(self) -> str:
        return f"power(alpha={self._alpha:g})"

    # -- primitives -----------------------------------------------------
    def __call__(self, t: ArrayLike) -> ArrayLike:
        t = np.asarray(t, dtype=float)
        result = t ** (1.0 - self._alpha) / (self._alpha - 1.0)
        return float(result) if result.ndim == 0 else result

    @property
    def h0(self) -> float:
        # t**(1-alpha) -> 0 for alpha < 1 and -> inf for alpha > 1.
        return 0.0 if self._alpha < 1 else math.inf

    @property
    def gain_never(self) -> float:
        # h(t) -> -inf for alpha < 1 (unbounded waiting cost), -> 0 otherwise.
        return -math.inf if self._alpha < 1 else 0.0

    @property
    def differential(self) -> DifferentialMeasure:
        alpha = self._alpha
        return DifferentialMeasure(
            density=lambda t: t ** (-alpha),
            singular_at_zero=alpha > 0,
        )

    # -- Table 1 closed forms --------------------------------------------
    def laplace_c(self, rate: float) -> float:
        if rate < 0:
            raise UtilityDomainError(f"rate must be >= 0, got {rate}")
        if self._alpha >= 1:
            # c(t) = t**-alpha is not integrable near zero.
            return math.inf
        if rate == 0:
            return math.inf  # c is not integrable at infinity either.
        return math.gamma(1.0 - self._alpha) * rate ** (self._alpha - 1.0)

    def expected_gain(self, rate: float) -> float:
        if rate < 0:
            raise UtilityDomainError(f"rate must be >= 0, got {rate}")
        if rate == 0:
            return self.gain_never
        if math.isinf(rate):
            return self.h0
        alpha = self._alpha
        return (
            math.gamma(2.0 - alpha) / (alpha - 1.0) * rate ** (alpha - 1.0)
        )

    def expected_gains(self, rates) -> np.ndarray:
        rates = np.asarray(rates, dtype=float)
        alpha = self._alpha
        with np.errstate(divide="ignore"):
            gains = (
                math.gamma(2.0 - alpha)
                / (alpha - 1.0)
                * rates ** (alpha - 1.0)
            )
        gains = np.where(rates == 0, self.gain_never, gains)
        return gains

    def phi(self, x: float, mu: float = 1.0) -> float:
        if x < 0:
            raise UtilityDomainError(f"replica count must be >= 0, got {x}")
        if mu <= 0:
            raise UtilityDomainError(f"meeting rate must be > 0, got {mu}")
        alpha = self._alpha
        if x == 0:
            return math.inf  # x**(alpha-2) with alpha < 2.
        return mu ** (alpha - 1.0) * math.gamma(2.0 - alpha) * x ** (alpha - 2.0)

    def phi_inverse(self, value: float, mu: float = 1.0) -> float:
        if value <= 0:
            raise UtilityDomainError(f"phi value must be > 0, got {value}")
        if mu <= 0:
            raise UtilityDomainError(f"meeting rate must be > 0, got {mu}")
        alpha = self._alpha
        constant = mu ** (alpha - 1.0) * math.gamma(2.0 - alpha)
        return (value / constant) ** (1.0 / (alpha - 2.0))


class NegLogUtility(DelayUtility):
    """Negative-logarithm utility ``h(t) = -ln(t)``: the ``alpha = 1`` limit.

    Features both a high reward for fast fulfillment and an unbounded
    waiting cost.  ``phi(x) = 1/x`` and ``psi(y)`` is constant: creating one
    replica per fulfilled request (passive/proportional replication) is
    exactly optimal at this impatience level.
    """

    @property
    def alpha(self) -> float:
        """The impatience exponent (always 1 for this family)."""
        return 1.0

    @property
    def name(self) -> str:
        return "neglog"

    # -- primitives -----------------------------------------------------
    def __call__(self, t: ArrayLike) -> ArrayLike:
        t = np.asarray(t, dtype=float)
        result = -np.log(t)
        return float(result) if result.ndim == 0 else result

    @property
    def h0(self) -> float:
        return math.inf

    @property
    def gain_never(self) -> float:
        return -math.inf

    @property
    def differential(self) -> DifferentialMeasure:
        return DifferentialMeasure(
            density=lambda t: 1.0 / t, singular_at_zero=True
        )

    # -- Table 1 closed forms --------------------------------------------
    def laplace_c(self, rate: float) -> float:
        if rate < 0:
            raise UtilityDomainError(f"rate must be >= 0, got {rate}")
        return math.inf  # 1/t is not integrable near zero.

    def expected_gain(self, rate: float) -> float:
        if rate < 0:
            raise UtilityDomainError(f"rate must be >= 0, got {rate}")
        if rate == 0:
            return -math.inf
        if math.isinf(rate):
            return math.inf
        # E[-ln Y] = euler_gamma + ln(rate) for Y ~ Exp(rate).
        return _EULER_GAMMA + math.log(rate)

    def expected_gains(self, rates) -> np.ndarray:
        rates = np.asarray(rates, dtype=float)
        with np.errstate(divide="ignore"):
            gains = _EULER_GAMMA + np.log(rates)
        return gains

    def phi(self, x: float, mu: float = 1.0) -> float:
        if x < 0:
            raise UtilityDomainError(f"replica count must be >= 0, got {x}")
        if mu <= 0:
            raise UtilityDomainError(f"meeting rate must be > 0, got {mu}")
        if x == 0:
            return math.inf
        return 1.0 / x

    def phi_inverse(self, value: float, mu: float = 1.0) -> float:
        if value <= 0:
            raise UtilityDomainError(f"phi value must be > 0, got {value}")
        if mu <= 0:
            raise UtilityDomainError(f"meeting rate must be > 0, got {mu}")
        return 1.0 / value


def power_family(alpha: float) -> DelayUtility:
    """Return the power-family utility for *alpha*, handling the limit.

    ``alpha = 1`` returns :class:`NegLogUtility`; any other ``alpha < 2``
    returns :class:`PowerUtility`.
    """
    if alpha == 1:
        return NegLogUtility()
    return PowerUtility(alpha)
