"""Delay-utility models of user impatience (paper Section 3.2, Table 1).

Public surface:

* :class:`DelayUtility` — abstract base every family implements;
* :class:`StepUtility`, :class:`ExponentialUtility` — advertising revenue;
* :class:`PowerUtility`, :class:`NegLogUtility`, :func:`power_family` —
  time-critical information and waiting costs;
* :class:`ScaledUtility`, :class:`ShiftedUtility`, :class:`MixtureUtility`,
  :class:`TabulatedUtility` — composite / empirical utilities;
* :class:`DifferentialMeasure`, :class:`Atom` — the differential
  delay-utility ``c = -h'`` as a measure (density plus Dirac atoms);
* :func:`table1_rows` — the paper's Table 1 as data.
"""

from .base import DelayUtility
from .composite import (
    MixtureUtility,
    ScaledUtility,
    ShiftedUtility,
    TabulatedUtility,
)
from .estimation import (
    FeedbackSample,
    estimate_consumption_curve,
    pava_decreasing,
    synthesize_feedback,
)
from .exponential import ExponentialUtility
from .measures import Atom, DifferentialMeasure
from .power import NegLogUtility, PowerUtility, power_family
from .step import StepUtility
from .tables import Table1Row, table1_rows

__all__ = [
    "DelayUtility",
    "StepUtility",
    "ExponentialUtility",
    "PowerUtility",
    "NegLogUtility",
    "power_family",
    "ScaledUtility",
    "ShiftedUtility",
    "MixtureUtility",
    "TabulatedUtility",
    "Atom",
    "DifferentialMeasure",
    "Table1Row",
    "table1_rows",
    "FeedbackSample",
    "estimate_consumption_curve",
    "pava_decreasing",
    "synthesize_feedback",
]
