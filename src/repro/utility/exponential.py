"""Exponential delay-utility: the mixed-impatience advertising model.

``h_nu(t) = exp(-nu * t)`` — at any instant a constant fraction of the user
population loses interest (paper, Section 3.2).  Table-1 closed forms:

=============  ===============================================
``U`` term     ``d_i * (1 - 1 / (1 + (mu/nu) * x_i))``
``phi(x)``     ``(mu/nu) * (1 + (mu/nu) * x)**-2 * nu``  (i.e. ``mu*nu/(nu+mu*x)**2``)
``psi(y)``     ``1 / (nu*y/(mu*|S|) + 2 + mu*|S|/(nu*y))``
=============  ===============================================
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import UtilityDomainError
from ..types import ArrayLike
from .base import DelayUtility
from .measures import DifferentialMeasure

__all__ = ["ExponentialUtility"]


class ExponentialUtility(DelayUtility):
    """Exponential-decay utility ``h(t) = exp(-nu * t)``.

    Parameters
    ----------
    nu:
        Impatience rate; larger means users lose interest faster.
    """

    def __init__(self, nu: float) -> None:
        if not nu > 0:
            raise UtilityDomainError(f"nu must be > 0, got {nu}")
        self._nu = float(nu)

    @property
    def nu(self) -> float:
        """The impatience rate."""
        return self._nu

    @property
    def name(self) -> str:
        return f"exp(nu={self._nu:g})"

    # -- primitives -----------------------------------------------------
    def __call__(self, t: ArrayLike) -> ArrayLike:
        t = np.asarray(t, dtype=float)
        result = np.exp(-self._nu * t)
        return float(result) if result.ndim == 0 else result

    @property
    def h0(self) -> float:
        return 1.0

    @property
    def gain_never(self) -> float:
        return 0.0

    @property
    def differential(self) -> DifferentialMeasure:
        nu = self._nu
        return DifferentialMeasure(density=lambda t: nu * math.exp(-nu * t))

    # -- Table 1 closed forms --------------------------------------------
    def laplace_c(self, rate: float) -> float:
        if rate < 0:
            raise UtilityDomainError(f"rate must be >= 0, got {rate}")
        return self._nu / (self._nu + rate)

    def expected_gain(self, rate: float) -> float:
        if rate < 0:
            raise UtilityDomainError(f"rate must be >= 0, got {rate}")
        if math.isinf(rate):
            return 1.0
        return rate / (self._nu + rate)

    def expected_gains(self, rates) -> np.ndarray:
        rates = np.asarray(rates, dtype=float)
        return rates / (self._nu + rates)

    def phi(self, x: float, mu: float = 1.0) -> float:
        if x < 0:
            raise UtilityDomainError(f"replica count must be >= 0, got {x}")
        if mu <= 0:
            raise UtilityDomainError(f"meeting rate must be > 0, got {mu}")
        return mu * self._nu / (self._nu + mu * x) ** 2

    def phi_inverse(self, value: float, mu: float = 1.0) -> float:
        if value <= 0:
            raise UtilityDomainError(f"phi value must be > 0, got {value}")
        if mu <= 0:
            raise UtilityDomainError(f"meeting rate must be > 0, got {mu}")
        x = (math.sqrt(mu * self._nu / value) - self._nu) / mu
        return max(0.0, x)
