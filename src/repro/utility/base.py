"""Delay-utility functions: the paper's model of user impatience.

A delay-utility function ``h(t)`` (Section 3.2) maps the waiting time of a
request to the gain obtained when it is fulfilled after that wait.  ``h`` is
monotone non-increasing; it may be negative (waiting *costs*), and ``h(0+)``
may be infinite for time-critical content (in which case the paper restricts
its use to the dedicated-node scenario).

:class:`DelayUtility` fixes the interface every family implements and
provides generic numeric implementations — built on the differential measure
``c = -h'`` (:mod:`repro.utility.measures`) — of every derived quantity the
paper uses:

``laplace_c(rate)``
    ``integral of exp(-rate*t) c(t) dt``; by Lemma 1 the expected gain of a
    request fulfilled at exponential rate ``lambda`` is
    ``h(0+) - laplace_c(lambda)``.
``expected_gain(rate)``
    ``E[h(Y)]`` for ``Y ~ Exp(rate)`` — the per-request utility term.
``phi(x, mu)``
    the balance transform of Property 1,
    ``phi(x) = integral of mu*t*exp(-mu*t*x) c(t) dt``; the relaxed optimum
    equalizes ``d_i * phi(x_i)`` across items.
``psi(y, n_servers, mu)``
    the QCR reaction function of Property 2,
    ``psi(y) = (|S|/y) * phi(|S|/y)``.

Closed-form subclasses (step, exponential, power, negative-log) override the
numeric versions with the expressions of Table 1; property-based tests verify
closed form against the numeric fallback.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Iterable

import numpy as np
from scipy import integrate

from ..errors import UtilityDomainError
from ..types import ArrayLike, FloatArray
from .measures import DifferentialMeasure

__all__ = ["DelayUtility"]


class DelayUtility(ABC):
    """Abstract base class for monotone non-increasing delay-utilities."""

    # ------------------------------------------------------------------
    # primitives every family must define
    # ------------------------------------------------------------------
    @abstractmethod
    def __call__(self, t: ArrayLike) -> ArrayLike:
        """Evaluate ``h(t)`` for ``t > 0`` (vectorized over numpy arrays)."""

    @property
    @abstractmethod
    def h0(self) -> float:
        """The limit ``h(0+)``; may be ``math.inf``."""

    @property
    @abstractmethod
    def gain_never(self) -> float:
        """The limit of ``h(t)`` as ``t -> inf``; may be ``-math.inf``.

        This is the gain credited to a request that is never fulfilled.
        """

    @property
    @abstractmethod
    def differential(self) -> DifferentialMeasure:
        """The differential delay-utility measure ``c = -h'``."""

    @property
    def name(self) -> str:
        """Short human-readable name used in reports."""
        return type(self).__name__

    # ------------------------------------------------------------------
    # derived quantities with generic numeric implementations
    # ------------------------------------------------------------------
    @property
    def finite_at_zero(self) -> bool:
        """Whether ``h(0+)`` is finite.

        Utilities with infinite ``h(0+)`` must be used in the dedicated-node
        scenario (the paper, Section 3.2): a client that already caches the
        item it requests would otherwise realize an infinite gain.
        """
        return math.isfinite(self.h0)

    def laplace_c(self, rate: float) -> float:
        """Return ``integral of exp(-rate*t) c(t) dt`` over ``(0, inf)``.

        May be infinite when ``c`` is not integrable near zero and
        ``h(0+) = inf`` (power utilities with ``alpha >= 1``).
        """
        if rate < 0:
            raise UtilityDomainError(f"rate must be >= 0, got {rate}")
        return self.differential.laplace(rate)

    def expected_gain(self, rate: float) -> float:
        """Return ``E[h(Y)]`` for a fulfillment delay ``Y ~ Exp(rate)``.

        ``rate == 0`` (no replica anywhere) yields :attr:`gain_never`.
        """
        if rate < 0:
            raise UtilityDomainError(f"rate must be >= 0, got {rate}")
        if rate == 0:
            return self.gain_never
        if math.isinf(rate):
            return self.h0
        if self.finite_at_zero:
            return self.h0 - self.laplace_c(rate)
        return self._expected_gain_numeric(rate)

    def _expected_gain_numeric(self, rate: float) -> float:
        """Numeric ``E[h(Y)]`` by integrating ``h`` against the Exp density.

        Fallback used when ``h(0+)`` is infinite, so the Lemma-1 identity
        ``h(0+) - laplace_c(rate)`` cannot be applied directly.
        """

        def integrand(t: float) -> float:
            return float(self(t)) * rate * math.exp(-rate * t)

        # quad does not accept break points together with an infinite bound,
        # so split at a few mean-multiples: the head panel isolates the
        # possible singularity of h at zero.
        split = 10.0 / rate
        head, _ = integrate.quad(
            integrand, 0.0, split, points=[0.0], limit=200
        )
        tail, _ = integrate.quad(integrand, split, math.inf, limit=200)
        return head + tail

    def expected_gains(self, rates: Iterable[float]) -> FloatArray:
        """Vectorized :meth:`expected_gain` over an iterable of rates."""
        return np.array([self.expected_gain(r) for r in rates], dtype=float)

    def phi(self, x: float, mu: float = 1.0) -> float:
        """Return ``phi(x) = integral of mu*t*exp(-mu*t*x) c(t) dt``.

        This is ``(1/d_i) * dU/dx_i`` in the homogeneous continuous-time
        model (Property 1): the marginal welfare of a fractional extra
        replica when ``x`` replicas are present.  Defined for ``x >= 0``;
        ``phi(0)`` may be infinite for heavy-tailed differential measures.
        """
        if x < 0:
            raise UtilityDomainError(f"replica count must be >= 0, got {x}")
        if mu <= 0:
            raise UtilityDomainError(f"meeting rate must be > 0, got {mu}")
        return self.differential.integrate(
            lambda t: mu * t * math.exp(-mu * t * x)
        )

    def phi_inverse(self, value: float, mu: float = 1.0) -> float:
        """Return ``x >= 0`` with ``phi(x) = value`` (``phi`` is decreasing).

        Returns ``0`` when ``value >= phi(0)`` and ``math.inf`` as
        ``value -> 0``; the relaxed-allocation solver clips the result to
        the feasible range.  The generic implementation brackets by
        doubling and bisects; closed-form families override it.
        """
        if value <= 0:
            raise UtilityDomainError(f"phi value must be > 0, got {value}")
        if mu <= 0:
            raise UtilityDomainError(f"meeting rate must be > 0, got {mu}")
        if self.phi(0.0, mu) <= value:
            return 0.0
        lo, hi = 0.0, 1.0
        for _ in range(200):
            if self.phi(hi, mu) < value:
                break
            lo, hi = hi, hi * 2.0
        else:  # pragma: no cover - value astronomically small
            return math.inf
        for _ in range(100):
            mid = (lo + hi) / 2.0
            if self.phi(mid, mu) >= value:
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2.0

    def psi(self, y: float, n_servers: int, mu: float = 1.0) -> float:
        """Return the QCR reaction ``psi(y) = (|S|/y) * phi(|S|/y)``.

        ``y`` is the final value of a request's query counter; ``psi(y)`` is
        the number of replicas QCR creates on fulfillment (Property 2).
        """
        if y <= 0:
            raise UtilityDomainError(f"query count must be > 0, got {y}")
        if n_servers <= 0:
            raise UtilityDomainError(
                f"n_servers must be > 0, got {n_servers}"
            )
        ratio = n_servers / y
        return ratio * self.phi(ratio, mu)

    # ------------------------------------------------------------------
    # discrete-time contact model counterparts
    # ------------------------------------------------------------------
    def delta_c(self, k: int, delta: float) -> float:
        """Return ``delta_c(k*delta) = h(k*delta) - h((k+1)*delta)``.

        The discrete-time differential delay-utility of Section 3.5.
        ``k = 0`` uses ``h(0+)`` and may be infinite.
        """
        if k < 0:
            raise UtilityDomainError(f"slot index must be >= 0, got {k}")
        if delta <= 0:
            raise UtilityDomainError(f"slot length must be > 0, got {delta}")
        left = self.h0 if k == 0 else float(self(k * delta))
        return left - float(self((k + 1) * delta))

    def expected_gain_discrete(
        self,
        failure_prob: float,
        delta: float,
        *,
        tol: float = 1e-12,
        max_terms: int = 10_000_000,
    ) -> float:
        """Expected gain in the discrete-time model (Lemma 1).

        ``failure_prob`` is the per-slot probability that the request is
        *not* fulfilled (``prod_m (1 - x_{i,m} mu_{m,n} delta)`` in Lemma 1).
        Returns ``h(delta) - sum_{k>=1} failure_prob**k * delta_c(k*delta)``,
        truncating the series once the geometric envelope falls below *tol*.
        """
        if not 0.0 <= failure_prob <= 1.0:
            raise UtilityDomainError(
                f"failure probability must be in [0, 1], got {failure_prob}"
            )
        # repro-lint: ignore[RPL005] exact domain boundary: the series
        # degenerates only at exactly 1.0, which is representable and
        # validated just above.
        if failure_prob == 1.0:
            return self.gain_never
        total = float(self(delta))
        weight = 1.0
        for k in range(1, max_terms):
            weight *= failure_prob
            step = self.delta_c(k, delta)
            term = weight * step
            total -= term
            # Geometric envelope: remaining terms are bounded by
            # weight * (h(k*delta) - gain_never) when that is finite, and by
            # term / (1 - failure_prob) once delta_c is non-increasing.
            if weight < tol and abs(term) < tol * max(1.0, abs(total)):
                break
        return total

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.name}>"
