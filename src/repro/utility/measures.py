"""Differential delay-utility measures.

The paper (Section 3.5) defines the *differential delay-utility*
``c_i(t) = -dh_i/dt`` — the marginal loss of utility per extra unit of
waiting time.  For smooth utilities ``c`` is an ordinary density; for
non-differentiable utilities such as the step function it is a measure with
Dirac atoms (the paper: "the derivative measure in the sense of the
distribution").

:class:`DifferentialMeasure` represents such a measure as a density part plus
a list of point atoms, and knows how to integrate weight functions against
itself.  This lets the generic (numeric) implementations of the ``phi``
transform, the Laplace transform, and expected gains in
:mod:`repro.utility.base` be *exact* for every delay-utility family,
including those with atoms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from scipy import integrate

from ..analysis.annotations import declared_effects

__all__ = ["Atom", "DifferentialMeasure"]


@dataclass(frozen=True)
class Atom:
    """A Dirac atom of the differential measure.

    A delay-utility ``h`` that drops by ``mass`` at time ``location``
    contributes an atom: waiting past ``location`` instantaneously loses
    ``mass`` units of utility.
    """

    location: float
    mass: float

    def __post_init__(self) -> None:
        if self.location < 0:
            raise ValueError(f"atom location must be >= 0, got {self.location}")
        if self.mass < 0:
            raise ValueError(f"atom mass must be >= 0, got {self.mass}")


@dataclass(frozen=True)
class DifferentialMeasure:
    """A positive measure on ``(0, inf)``: density part plus Dirac atoms.

    Parameters
    ----------
    density:
        Density of the absolutely-continuous part, evaluated pointwise.
        ``None`` means the measure is purely atomic.
    atoms:
        Point masses of the measure.
    singular_at_zero:
        True when the density is unbounded as ``t -> 0`` (e.g. power-family
        ``t**-alpha``).  The integrator then splits the first panel so
        ``scipy.integrate.quad`` handles the endpoint singularity.
    breakpoints:
        Extra panel boundaries where the density is non-smooth (e.g. knots
        of a piecewise-linear delay-utility); improves quadrature accuracy.
    """

    density: Optional[Callable[[float], float]] = None
    atoms: Tuple[Atom, ...] = field(default_factory=tuple)
    singular_at_zero: bool = False
    breakpoints: Tuple[float, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.density is None and not self.atoms:
            raise ValueError("measure must have a density part or atoms")
        object.__setattr__(self, "atoms", tuple(self.atoms))
        object.__setattr__(self, "breakpoints", tuple(self.breakpoints))

    # ------------------------------------------------------------------
    # integration
    # ------------------------------------------------------------------
    @declared_effects()  # pure: both callbacks are closed-form math
    def integrate(
        self,
        weight: Callable[[float], float],
        upper: float = math.inf,
        *,
        rtol: float = 1e-10,
    ) -> float:
        """Return ``integral over (0, upper] of weight(t) dC(t)``.

        The weight is integrated against the density with
        :func:`scipy.integrate.quad` (splitting at atoms and, when flagged,
        near zero), then atom contributions ``mass * weight(location)`` are
        added for atoms with ``0 < location <= upper``.

        Declared pure for ``repro analyze``: the ``weight`` callback and
        the measure's ``density`` are delay-utility integrands —
        closed-form math defined next to the utility families — so the
        calls through them are deterministic even though the static
        call graph cannot resolve them.
        """
        total = 0.0
        if self.density is not None:
            total += self._integrate_density(weight, upper, rtol)
        for atom in self.atoms:
            if 0.0 < atom.location <= upper:
                total += atom.mass * weight(atom.location)
        return total

    @declared_effects()  # pure: see `integrate` — same callbacks
    def _integrate_density(
        self, weight: Callable[[float], float], upper: float, rtol: float
    ) -> float:
        density = self.density
        assert density is not None

        def integrand(t: float) -> float:
            return weight(t) * density(t)

        breakpoints = sorted(
            {a.location for a in self.atoms if 0.0 < a.location < upper}
            | {b for b in self.breakpoints if 0.0 < b < upper}
        )
        panels: List[Tuple[float, float]] = []
        lower = 0.0
        for point in breakpoints:
            panels.append((lower, point))
            lower = point
        panels.append((lower, upper))

        total = 0.0
        for left, right in panels:
            if right <= left:
                continue
            if math.isinf(right):
                value, _ = integrate.quad(
                    integrand, left, right, epsrel=rtol, limit=200
                )
            # repro-lint: ignore[RPL005] panel edges are constructed from
            # the literal 0.0 above, so the sentinel compare is exact.
            elif left == 0.0 and self.singular_at_zero:
                # quad handles endpoint singularities if told where they are.
                value, _ = integrate.quad(
                    integrand,
                    left,
                    right,
                    epsrel=rtol,
                    limit=200,
                    points=[left],
                )
            else:
                value, _ = integrate.quad(
                    integrand, left, right, epsrel=rtol, limit=200
                )
            total += value
        return total

    # ------------------------------------------------------------------
    # convenience transforms
    # ------------------------------------------------------------------
    def laplace(self, rate: float) -> float:
        """Return ``integral of exp(-rate * t) dC(t)``."""
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        return self.integrate(lambda t: math.exp(-rate * t))

    def total_mass(self, upper: float = math.inf) -> float:
        """Return the measure's total mass on ``(0, upper]``.

        Equals ``h(0+) - h(upper)`` for the generating delay-utility.
        """
        return self.integrate(lambda _t: 1.0, upper=upper)

    def scaled(self, factor: float) -> "DifferentialMeasure":
        """Return the measure scaled by a non-negative *factor*."""
        if factor < 0:
            raise ValueError(f"scale factor must be >= 0, got {factor}")
        density = self.density
        new_density = None
        if density is not None:
            new_density = lambda t, _d=density: factor * _d(t)  # noqa: E731
        return DifferentialMeasure(
            density=new_density,
            atoms=tuple(Atom(a.location, factor * a.mass) for a in self.atoms),
            singular_at_zero=self.singular_at_zero,
            breakpoints=self.breakpoints,
        )

    @staticmethod
    def combine(
        measures: Sequence["DifferentialMeasure"],
    ) -> "DifferentialMeasure":
        """Return the sum of several measures (used by mixture utilities)."""
        if not measures:
            raise ValueError("need at least one measure to combine")
        densities = [m.density for m in measures if m.density is not None]
        atoms: List[Atom] = []
        for m in measures:
            atoms.extend(m.atoms)

        combined_density = None
        if densities:

            def combined_density(t: float, _ds=tuple(densities)) -> float:
                return sum(d(t) for d in _ds)

        breakpoints: List[float] = []
        for m in measures:
            breakpoints.extend(m.breakpoints)
        return DifferentialMeasure(
            density=combined_density,
            atoms=tuple(atoms),
            singular_at_zero=any(m.singular_at_zero for m in measures),
            breakpoints=tuple(sorted(set(breakpoints))),
        )
