"""Step delay-utility: the "advertising revenue" deadline model.

``h_tau(t) = 1 if t <= tau else 0`` — every user abandons the content after
waiting exactly ``tau`` time units (paper, Section 3.2, "Advertising
Revenue").  The differential delay-utility is a unit Dirac atom at ``tau``,
and all Table-1 quantities have simple closed forms:

=============  =======================================
``U`` term     ``d_i * (1 - exp(-mu * tau * x_i))``
``phi(x)``     ``mu * tau * exp(-mu * tau * x)``
``psi(y)``     ``(mu*tau*|S|/y) * exp(-mu*tau*|S|/y)``
=============  =======================================
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import UtilityDomainError
from ..types import ArrayLike
from .base import DelayUtility
from .measures import Atom, DifferentialMeasure

__all__ = ["StepUtility"]


class StepUtility(DelayUtility):
    """Deadline utility ``h(t) = 1{t <= tau}``.

    Parameters
    ----------
    tau:
        The common abandonment deadline; must be positive.
    """

    def __init__(self, tau: float) -> None:
        if not tau > 0:
            raise UtilityDomainError(f"tau must be > 0, got {tau}")
        self._tau = float(tau)

    @property
    def tau(self) -> float:
        """The abandonment deadline."""
        return self._tau

    @property
    def name(self) -> str:
        return f"step(tau={self._tau:g})"

    # -- primitives -----------------------------------------------------
    def __call__(self, t: ArrayLike) -> ArrayLike:
        if isinstance(t, float):  # engine hot path (np.float64 included)
            return 1.0 if t <= self._tau else 0.0
        t = np.asarray(t, dtype=float)
        result = np.where(t <= self._tau, 1.0, 0.0)
        return float(result) if result.ndim == 0 else result

    @property
    def h0(self) -> float:
        return 1.0

    @property
    def gain_never(self) -> float:
        return 0.0

    @property
    def differential(self) -> DifferentialMeasure:
        return DifferentialMeasure(atoms=(Atom(self._tau, 1.0),))

    # -- Table 1 closed forms --------------------------------------------
    def laplace_c(self, rate: float) -> float:
        if rate < 0:
            raise UtilityDomainError(f"rate must be >= 0, got {rate}")
        return math.exp(-rate * self._tau)

    def expected_gain(self, rate: float) -> float:
        if rate < 0:
            raise UtilityDomainError(f"rate must be >= 0, got {rate}")
        if math.isinf(rate):
            return 1.0
        return -math.expm1(-rate * self._tau)

    def expected_gains(self, rates) -> np.ndarray:
        return -np.expm1(-np.asarray(rates, dtype=float) * self._tau)

    def phi(self, x: float, mu: float = 1.0) -> float:
        if x < 0:
            raise UtilityDomainError(f"replica count must be >= 0, got {x}")
        if mu <= 0:
            raise UtilityDomainError(f"meeting rate must be > 0, got {mu}")
        return mu * self._tau * math.exp(-mu * self._tau * x)

    def phi_inverse(self, value: float, mu: float = 1.0) -> float:
        if value <= 0:
            raise UtilityDomainError(f"phi value must be > 0, got {value}")
        if mu <= 0:
            raise UtilityDomainError(f"meeting rate must be > 0, got {mu}")
        if value >= mu * self._tau:
            return 0.0
        return math.log(mu * self._tau / value) / (mu * self._tau)
