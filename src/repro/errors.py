"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError`, so callers can
catch a single base class at API boundaries while tests can assert on the
precise subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """A configuration object or parameter combination is invalid."""


class TraceFormatError(ReproError, ValueError):
    """A contact trace file or array does not conform to the expected format."""


class AllocationError(ReproError, ValueError):
    """A cache allocation is infeasible or inconsistent with the scenario."""


class UtilityDomainError(ReproError, ValueError):
    """A delay-utility operation was evaluated outside its domain.

    Typical causes: a power utility with ``alpha >= 2`` (the welfare
    integral diverges), or requesting ``h(0+)`` where it is infinite in a
    context that requires a finite value.
    """


class SimulationError(ReproError, RuntimeError):
    """The simulator reached an inconsistent internal state."""
