"""Mobility models and contact extraction (vehicular-trace substrate)."""

from .extraction import extract_contacts
from .waypoint import RandomWaypointModel

__all__ = ["RandomWaypointModel", "extract_contacts"]
