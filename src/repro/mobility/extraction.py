"""Proximity-based contact extraction from position samples.

Follows the construction the paper applies to the Cabspotting data:
"taxicabs are in contact whenever they are less than 200 m apart".  A
*contact event* is recorded when a pair transitions from out-of-range to
in-range (the start of an encounter), which matches the instantaneous
meeting semantics of :class:`~repro.contacts.trace.ContactTrace`.
"""

from __future__ import annotations

import numpy as np

from ..contacts.trace import ContactTrace
from ..errors import ConfigurationError
from ..types import FloatArray

__all__ = ["extract_contacts"]


def extract_contacts(
    positions: FloatArray,
    times: FloatArray,
    radius: float,
) -> ContactTrace:
    """Derive a contact trace from sampled positions.

    Parameters
    ----------
    positions:
        Array of shape ``(n_times, n_nodes, 2)``.
    times:
        Sample instants, strictly increasing, starting at ``>= 0``.
    radius:
        Contact range in the same length unit as the positions.

    Returns
    -------
    ContactTrace
        One event per encounter *start*; pairs already in range at the
        first sample count as an encounter starting then.
    """
    positions = np.asarray(positions, dtype=float)
    times = np.asarray(times, dtype=float)
    if positions.ndim != 3 or positions.shape[2] != 2:
        raise ConfigurationError(
            f"positions must have shape (n_times, n_nodes, 2), got {positions.shape}"
        )
    if len(times) != positions.shape[0]:
        raise ConfigurationError("times length must match positions")
    if len(times) < 2 or np.any(np.diff(times) <= 0):
        raise ConfigurationError("times must be strictly increasing, >= 2 samples")
    if radius <= 0:
        raise ConfigurationError(f"radius must be > 0, got {radius}")

    n_nodes = positions.shape[1]
    iu = np.triu_indices(n_nodes, k=1)
    event_times = []
    event_a = []
    event_b = []
    previous = np.zeros(len(iu[0]), dtype=bool)
    for k in range(len(times)):
        frame = positions[k]
        deltas = frame[iu[0]] - frame[iu[1]]
        in_range = (deltas[:, 0] ** 2 + deltas[:, 1] ** 2) <= radius**2
        started = in_range & ~previous
        count = int(started.sum())
        if count:
            event_times.append(np.full(count, times[k]))
            event_a.append(iu[0][started])
            event_b.append(iu[1][started])
        previous = in_range

    if event_times:
        all_times = np.concatenate(event_times)
        all_a = np.concatenate(event_a)
        all_b = np.concatenate(event_b)
    else:
        all_times = np.empty(0)
        all_a = np.empty(0, dtype=np.int64)
        all_b = np.empty(0, dtype=np.int64)
    return ContactTrace(
        times=all_times,
        node_a=all_a,
        node_b=all_b,
        n_nodes=n_nodes,
        duration=float(times[-1]),
    )
