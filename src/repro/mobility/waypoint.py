"""Random-waypoint mobility on a rectangular area.

The substrate for the Cabspotting substitution (DESIGN.md §2): each node
repeatedly picks a uniform destination, travels to it in a straight line
at a uniform-random speed, optionally pauses, and repeats.  Positions are
piecewise-linear in time, so sampling at arbitrary instants is exact
interpolation between waypoint knots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..types import FloatArray, SeedLike, as_rng

__all__ = ["RandomWaypointModel"]


@dataclass(frozen=True)
class RandomWaypointModel:
    """Random-waypoint mobility parameters.

    Distances and speeds share one length unit and one time unit (the
    vehicular generator uses meters and seconds).
    """

    width: float
    height: float
    speed_min: float
    speed_max: float
    pause_min: float = 0.0
    pause_max: float = 0.0
    #: When set, each node gets a uniform-random *home point* and draws its
    #: waypoints from a normal of this std-dev around it (clipped to the
    #: area).  Nodes then keep territories, which makes pair meeting rates
    #: persistently heterogeneous — as observed for taxicab fleets.
    home_std: Optional[float] = None

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ConfigurationError("area dimensions must be > 0")
        if self.home_std is not None and self.home_std <= 0:
            raise ConfigurationError("home_std must be > 0 when set")
        if not 0 < self.speed_min <= self.speed_max:
            raise ConfigurationError(
                "need 0 < speed_min <= speed_max "
                f"(got {self.speed_min}, {self.speed_max})"
            )
        if not 0 <= self.pause_min <= self.pause_max:
            raise ConfigurationError(
                "need 0 <= pause_min <= pause_max "
                f"(got {self.pause_min}, {self.pause_max})"
            )

    def sample_positions(
        self,
        n_nodes: int,
        times: FloatArray,
        seed: SeedLike = None,
    ) -> FloatArray:
        """Return node positions at *times*, shape ``(n_times, n_nodes, 2)``.

        *times* must be non-decreasing and start at ``>= 0``.
        """
        if n_nodes <= 0:
            raise ConfigurationError(f"n_nodes must be > 0, got {n_nodes}")
        times = np.asarray(times, dtype=float)
        if times.ndim != 1 or len(times) == 0:
            raise ConfigurationError("times must be a non-empty 1-D array")
        if times[0] < 0 or np.any(np.diff(times) < 0):
            raise ConfigurationError("times must be sorted and >= 0")
        rng = as_rng(seed)
        horizon = float(times[-1])

        positions = np.empty((len(times), n_nodes, 2), dtype=float)
        for node in range(n_nodes):
            home = None
            if self.home_std is not None:
                home = rng.uniform((0.0, 0.0), (self.width, self.height))
            knot_t, knot_xy = self._node_knots(horizon, rng, home)
            positions[:, node, 0] = np.interp(times, knot_t, knot_xy[:, 0])
            positions[:, node, 1] = np.interp(times, knot_t, knot_xy[:, 1])
        return positions

    def _draw_waypoint(
        self, rng: np.random.Generator, home: Optional[np.ndarray]
    ) -> np.ndarray:
        """A uniform waypoint, or a clipped normal around *home*."""
        if home is None:
            return rng.uniform((0.0, 0.0), (self.width, self.height))
        point = rng.normal(home, self.home_std)
        return np.clip(point, (0.0, 0.0), (self.width, self.height))

    def _node_knots(
        self,
        horizon: float,
        rng: np.random.Generator,
        home: Optional[np.ndarray] = None,
    ) -> tuple:
        """Simulate one node's waypoint legs; return knot times/positions."""
        knot_t: List[float] = [0.0]
        start = self._draw_waypoint(rng, home)
        knot_xy: List[np.ndarray] = [start]
        now = 0.0
        here = start
        while now <= horizon:
            target = self._draw_waypoint(rng, home)
            speed = rng.uniform(self.speed_min, self.speed_max)
            travel = float(np.hypot(*(target - here))) / speed
            now += travel
            knot_t.append(now)
            knot_xy.append(target)
            here = target
            if self.pause_max > 0:
                pause = rng.uniform(self.pause_min, self.pause_max)
                if pause > 0:
                    now += pause
                    knot_t.append(now)
                    knot_xy.append(target)
        return np.asarray(knot_t), np.asarray(knot_xy)
