"""Command-line interface: ``repro`` / ``python -m repro``.

Subcommands:

``repro figure {1..6}``
    Regenerate a paper figure's data series and print it.
``repro table1``
    Print Table 1 with closed-form vs. numeric verification.
``repro simulate``
    Run a single simulation with a chosen protocol and print metrics.
``repro trace``
    Work with traces.  ``trace poisson|conference|vehicular`` generates
    a synthetic contact trace; ``trace summary|filter|convert|cdf``
    analyzes a JSONL telemetry trace recorded by
    ``repro simulate --trace-out`` (``cdf`` compares per-item empirical
    delay CDFs against the Lemma 1 exponential).
``repro allocate``
    Print the optimal allocation for a homogeneous scenario.
``repro churn``
    Run a crash-wave robustness scenario (QCR vs static OPT under fault
    injection) and print recovery metrics plus a replica-count timeline.
``repro sweep``
    Fault-tolerant distributed sweeps over an on-disk work queue:
    ``start`` creates a queue and supervises local workers to
    completion, ``worker`` joins an existing queue from any host (over
    a shared filesystem), ``status`` inspects progress/leases/
    quarantine, ``watch`` renders a live plain-text fleet dashboard
    (worker liveness, throughput, ETA), ``resume`` re-supervises an
    interrupted sweep (see docs/distributed_sweeps.md).
``repro metrics``
    Dump or convert a metrics snapshot — a ``--metrics-out`` JSONL
    series, a run/sweep manifest, or a raw registry snapshot — to
    Prometheus text exposition or pretty JSON (see
    docs/observability.md).
``repro bench``
    Time the simulation engine against its frozen pre-optimization
    baseline and a serial vs. parallel sweep; write ``BENCH_speed.json``.
``repro cache``
    Inspect (``info``) or prune (``clear``) the content-addressed
    simulation run cache (see ``REPRO_SIM_CACHE`` and docs/performance.md).
``repro lint``
    Run the repo's custom static-analysis rules (determinism,
    sim-invariants, fork safety — see docs/static_analysis.md).
``repro analyze``
    Run the whole-program effect analyzer: inter-procedural
    determinism-boundary, durability, and trace-schema-drift checks
    over the full package (see docs/static_analysis.md).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import TYPE_CHECKING, List, Optional

from . import __version__
from .allocation import greedy_homogeneous, solve_relaxed
from .contacts import (
    detect_trace_format,
    load_contact_trace,
    save_binary,
    save_csv,
    save_jsonl,
    summarize,
)
from .contacts.synthetic import (
    ConferenceTraceConfig,
    VehicularTraceConfig,
    conference_trace,
    vehicular_trace,
)
from .contacts import homogeneous_poisson_trace
from .demand import DemandModel, generate_requests
from .errors import ConfigurationError, ReproError
from .faults import FaultSchedule
from .analysis.cli import add_analyze_arguments, cmd_analyze
from .lint.cli import add_lint_arguments, cmd_lint
from .obs import Tracer
from .obs.analysis import (
    TraceFileError,
    delay_cdf_comparison,
    filter_events,
    iter_events,
    summarize_events,
    write_events_csv,
    write_events_jsonl,
)
from .experiments import (
    BENCH_FILENAME,
    current_profile,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    render_speed_report,
    render_table,
    run_speed_benchmark,
    verify_table1,
)
from .experiments.scenarios import (
    MU,
    N_ITEMS,
    N_NODES,
    RHO,
    TOTAL_DEMAND,
    homogeneous_scenario,
    standard_protocols,
)
from .sim import simulate
from .simcache import (
    UncacheableRunError,
    resolve_run_cache,
    run_key,
)
from .utility import (
    DelayUtility,
    ExponentialUtility,
    StepUtility,
    power_family,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .dist.executors import SweepSpec

__all__ = ["main"]


def _build_utility(args: argparse.Namespace) -> DelayUtility:
    if args.utility == "step":
        return StepUtility(args.param)
    if args.utility == "exp":
        return ExponentialUtility(args.param)
    if args.utility == "power":
        return power_family(args.param)
    raise ReproError(f"unknown utility family {args.utility!r}")


def _add_utility_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--utility",
        choices=("step", "exp", "power"),
        default="step",
        help="delay-utility family (default: step)",
    )
    parser.add_argument(
        "--param",
        type=float,
        default=10.0,
        help="family parameter: tau, nu, or alpha (default: 10)",
    )


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help=(
            "reuse previously computed simulation runs from this cache "
            "root (default: the REPRO_SIM_CACHE environment variable)"
        ),
    )
    group.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the simulation run cache even if REPRO_SIM_CACHE is set",
    )


def _cache_setting(args: argparse.Namespace):
    """Map the --cache/--no-cache flags to a ``run_cache`` argument."""
    if args.no_cache:
        return False
    if args.cache:
        return args.cache
    return None  # defer to REPRO_SIM_CACHE


def _cmd_figure(args: argparse.Namespace) -> int:
    profile = current_profile()
    workers = args.workers if args.workers is not None else profile.n_workers
    sweep_kwargs = {
        "n_workers": workers,
        "progress": args.progress or None,
        "profile_dir": args.profile,
        "run_cache": _cache_setting(args),
    }
    builders = {
        1: lambda: figure1(),
        2: lambda: figure2(),
        3: lambda: figure3(profile, **sweep_kwargs),
        4: lambda: figure4(profile, **sweep_kwargs),
        5: lambda: figure5(profile, **sweep_kwargs),
        6: lambda: figure6(profile, **sweep_kwargs),
    }
    result = builders[args.number]()
    print(result.render())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    report = run_speed_benchmark(
        quick=args.quick,
        n_workers=args.workers,
        repeats=args.repeats,
        output=args.output,
    )
    print(render_speed_report(report))
    print(f"\nwrote {args.output}")
    if args.min_speedup is not None:
        failed = False
        observed = float(report["engine"]["min_speedup"])
        if observed < args.min_speedup:
            print(
                f"FAIL: engine min_speedup {observed:.3f}x is below the "
                f"required {args.min_speedup:.3f}x",
                file=sys.stderr,
            )
            failed = True
        unfaithful = [
            case["protocol"]
            for case in report["engine"]["cases"]
            if not case["bit_identical"]
        ]
        if not report["streamed"]["bit_identical"]:
            unfaithful.append("streamed")
        amort = report["sweep_amortization"]
        unfaithful.extend(
            f"sweep_amortization.{name}"
            for name, case in sorted(amort.items())
            if not case["bit_identical"]
        )
        if unfaithful:
            print(
                "FAIL: non-bit-identical cases: " + ", ".join(unfaithful),
                file=sys.stderr,
            )
            failed = True
        amort_speedup = float(amort["sweep"]["speedup"])
        if amort_speedup < 1.0:
            print(
                f"FAIL: merge-once sweep is not faster than "
                f"merge-per-protocol ({amort_speedup:.3f}x < 1.0x)",
                file=sys.stderr,
            )
            failed = True
        if failed:
            return 1
        streamed_rate = report["streamed"]["streamed_events_per_sec"]
        print(
            f"perf gate passed: engine min_speedup {observed:.3f}x >= "
            f"{args.min_speedup:.3f}x, all cases bit-identical, "
            f"streamed {streamed_rate / 1e6:.2f}M events/s, "
            f"sweep amortization {amort_speedup:.2f}x"
        )
    return 0


def _cmd_table1(_args: argparse.Namespace) -> int:
    verification = verify_table1()
    print(verification.render())
    print(f"\nmax relative error: {verification.max_relative_error:.2e}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    utility = _build_utility(args)
    scenario = homogeneous_scenario(
        utility,
        n_nodes=args.nodes,
        n_items=args.items,
        rho=args.rho,
        mu=args.mu,
        duration=args.duration,
        total_demand=args.demand,
    )
    factories = standard_protocols(scenario, include=(args.protocol,))
    trace = scenario.trace_factory(args.seed)
    requests = generate_requests(
        scenario.demand, trace.n_nodes, trace.duration, seed=args.seed + 1
    )
    protocol = factories[args.protocol](trace, requests)
    tracer = (
        Tracer.to_jsonl(args.trace_out, meta={"protocol": args.protocol})
        if args.trace_out
        else None
    )
    # Content-addressed reuse: a cache hit skips the simulation.  Traced
    # runs always execute (the JSONL side effect is the point), and a
    # cached result without a manifest cannot satisfy --manifest-out.
    cache = resolve_run_cache(_cache_setting(args)) if tracer is None else None
    cache_key: Optional[str] = None
    result = None
    if cache is not None:
        try:
            cache_key = run_key(
                scenario.config,
                protocol,
                args.seed + 2,
                trace,
                requests,
                None,
            )
        except UncacheableRunError:
            cache_key = None
        if cache_key is not None:
            result = cache.get(cache_key)
            if (
                result is not None
                and args.manifest_out
                and result.manifest is None
            ):
                result = None
    from_cache = result is not None
    if result is None:
        try:
            result = simulate(
                trace,
                requests,
                scenario.config,
                protocol,
                seed=args.seed + 2,
                tracer=tracer,
                manifest=bool(args.manifest_out),
            )
        finally:
            if tracer is not None:
                tracer.close()
        if cache is not None and cache_key is not None:
            cache.put(cache_key, result)
    rows = [[key, value] for key, value in result.summary().items()]
    title = f"{args.protocol} run" + (" (cached)" if from_cache else "")
    print(render_table(["metric", "value"], rows, title=title))
    if tracer is not None:
        print(f"wrote {tracer.seq} trace events to {args.trace_out}")
    if args.manifest_out:
        with open(args.manifest_out, "w", encoding="utf-8") as handle:
            json.dump(result.manifest, handle, indent=2)
            handle.write("\n")
        print(f"wrote run manifest to {args.manifest_out}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = resolve_run_cache(args.dir if args.dir else True)
    assert cache is not None  # True always resolves to a cache
    if args.cache_command == "info":
        info = cache.info()
        rows = [
            ["root", info["root"]],
            ["entries", str(info["n_entries"])],
            ["size", f"{info['total_bytes'] / 1024:.1f} KiB"],
        ]
        print(render_table(["field", "value"], rows, title="simulation run cache"))
    else:  # clear
        removed = cache.clear()
        print(f"removed {removed} cached run(s) from {cache.root}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.kind == "poisson":
        trace = homogeneous_poisson_trace(
            args.nodes, args.mu, args.duration, seed=args.seed
        )
    elif args.kind == "conference":
        trace = conference_trace(
            ConferenceTraceConfig(n_nodes=args.nodes), seed=args.seed
        )
    else:
        trace = vehicular_trace(
            VehicularTraceConfig(n_nodes=args.nodes), seed=args.seed
        )
    print(summarize(trace))
    if args.output:
        # Extension picks the format: .ctb -> binary columns,
        # .jsonl -> JSONL, anything else -> CSV.
        if args.output.endswith(".ctb"):
            save_binary(trace, args.output)
        elif args.output.endswith(".jsonl"):
            save_jsonl(trace, args.output)
        else:
            save_csv(trace, args.output)
        print(f"saved {len(trace)} contacts to {args.output}")
    return 0


def _cmd_trace_summary(args: argparse.Namespace) -> int:
    # Contact traces (CSV/JSONL/interval/binary) get contact statistics;
    # anything else is summarized as a JSONL telemetry event log.
    detected = detect_trace_format(args.file)
    if detected is not None:
        stats = summarize(load_contact_trace(args.file, fmt=detected))
        if args.json:
            print(json.dumps(dataclasses.asdict(stats), indent=2))
        else:
            print(stats)
        return 0
    summary = summarize_events(iter_events(args.file, validate=args.validate))
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    rows = [[kind, count] for kind, count in summary["kind_counts"].items()]
    title = f"{args.file}: {summary['n_events']} events"
    if summary["protocol"]:
        title += f" ({summary['protocol']}, t_last={summary['t_last']:g})"
    print(render_table(["event kind", "count"], rows, title=title))
    delay = summary["delay"]
    if delay is not None:
        print()
        print(
            render_table(
                ["statistic", "value"],
                [
                    ["fulfilled", delay["count"]],
                    ["mean delay", f"{delay['mean']:.4g}"],
                    ["p50", f"{delay['p50']:.4g}"],
                    ["p90", f"{delay['p90']:.4g}"],
                    ["p99", f"{delay['p99']:.4g}"],
                    ["max", f"{delay['max']:.4g}"],
                ],
                title="fulfillment delays",
            )
        )
    return 0


def _cmd_trace_filter(args: argparse.Namespace) -> int:
    events = filter_events(
        iter_events(args.file),
        kinds=args.kind or None,
        item=args.item,
        node=args.node,
        t_min=args.t_min,
        t_max=args.t_max,
    )
    if args.output:
        n = write_events_jsonl(events, args.output)
        print(f"wrote {n} events to {args.output}")
    else:
        write_events_jsonl(events, sys.stdout)
    return 0


def _cmd_trace_convert(args: argparse.Namespace) -> int:
    # Contact traces (CSV/JSONL/interval/binary) are detected by content
    # and round-trip between each other; anything else is treated as a
    # JSONL telemetry trace, which has no binary representation.
    detected = detect_trace_format(args.file)
    if detected is not None:
        trace = load_contact_trace(args.file, fmt=detected)
        if args.format == "csv":
            save_csv(trace, args.output)
        elif args.format == "jsonl":
            save_jsonl(trace, args.output)
        else:
            save_binary(trace, args.output)
        print(
            f"converted {len(trace)} contacts to {args.output} "
            f"({detected} -> {args.format})"
        )
        return 0
    if args.format == "binary":
        raise ConfigurationError(
            f"{args.file} is not a contact trace; telemetry traces "
            "cannot be converted to the binary contact format"
        )
    events = iter_events(args.file)
    if args.format == "csv":
        n = write_events_csv(events, args.output)
    else:
        n = write_events_jsonl(events, args.output)
    print(f"wrote {n} events to {args.output} ({args.format})")
    return 0


def _cmd_trace_cdf(args: argparse.Namespace) -> int:
    try:
        comparison = delay_cdf_comparison(
            iter_events(args.file),
            mu=args.mu,
            items=args.item or None,
            min_samples=args.min_samples,
        )
    except ValueError as exc:
        raise ReproError(str(exc)) from exc
    rows = [
        [
            item,
            detail["x"],
            detail["n_samples"],
            f"{detail['mean_delay']:.4g}",
            f"{detail['predicted_mean_delay']:.4g}",
            f"{detail['ks_statistic']:.4f}",
        ]
        for item, detail in comparison["items"].items()
    ]
    print(
        render_table(
            ["item", "x_i", "samples", "mean delay", "Lemma 1 mean", "KS"],
            rows,
            title=(
                f"empirical delay CDF vs Lemma 1 Exp(mu*x_i), "
                f"mu={args.mu:g}"
            ),
        )
    )
    if comparison["n_items_compared"]:
        print(
            f"\n{comparison['n_items_compared']} items compared: "
            f"max KS {comparison['max_ks']:.4f}, "
            f"mean KS {comparison['mean_ks']:.4f}"
        )
    else:
        print("\nno item had enough fulfilled requests to compare")
    if comparison["skipped"]:
        print(f"skipped {len(comparison['skipped'])} items (too few samples)")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(comparison, handle, indent=2)
            handle.write("\n")
        print(f"wrote full comparison to {args.output}")
    return 0


def _cmd_churn(args: argparse.Namespace) -> int:
    if not 0.0 < args.crash_fraction <= 1.0:
        raise ConfigurationError(
            f"--crash-fraction must be in (0, 1], got {args.crash_fraction}"
        )
    if not 0.0 <= args.crash_time < args.duration:
        raise ConfigurationError(
            "--crash-time must lie within the simulation horizon"
        )
    utility = _build_utility(args)
    scenario = homogeneous_scenario(
        utility,
        n_nodes=args.nodes,
        n_items=args.items,
        rho=args.rho,
        mu=args.mu,
        duration=args.duration,
        total_demand=args.demand,
        record_interval=args.record_interval,
    )
    n_crashed = max(1, round(args.crash_fraction * args.nodes))
    faults = FaultSchedule.crash_wave(
        args.crash_time,
        range(n_crashed),
        recover_at=args.recover_time,
        wipe_cache=not args.keep_caches,
        sticky_survives=not args.lose_sticky,
        drop_prob=args.drop_prob,
    )
    factories = standard_protocols(scenario, include=("OPT", "QCR"))
    trace = scenario.trace_factory(args.seed)
    requests = generate_requests(
        scenario.demand, trace.n_nodes, trace.duration, seed=args.seed + 1
    )
    timelines = {}
    rows = []
    for name in ("OPT", "QCR"):
        protocol = factories[name](trace, requests)
        result = simulate(
            trace,
            requests,
            scenario.config,
            protocol,
            seed=args.seed + 2,
            faults=faults,
        )
        robustness = result.robustness_summary()
        timelines[name] = (
            result.snapshot_times,
            result.snapshot_counts.sum(axis=1),
        )
        rows.append(
            [
                name,
                f"{result.gain_rate:.4f}",
                int(robustness["n_replicas_lost"]),
                int(result.final_counts.sum()),
                f"{robustness['total_downtime']:.0f}",
                (
                    f"{robustness['median_recovery_time']:.0f}"
                    if robustness["n_loss_episodes_recovered"]
                    else "never"
                ),
            ]
        )
    print(
        render_table(
            [
                "protocol",
                "utility/min",
                "replicas lost",
                "final replicas",
                "downtime",
                "median recovery",
            ],
            rows,
            title=(
                f"crash wave: {n_crashed}/{args.nodes} nodes at "
                f"t={args.crash_time:g}"
            ),
        )
    )
    times, _ = timelines["QCR"]
    timeline_rows = [
        [f"{t:.0f}", int(timelines["OPT"][1][k]), int(timelines["QCR"][1][k])]
        for k, t in enumerate(times)
    ]
    print()
    print(
        render_table(
            ["time", "OPT replicas", "QCR replicas"],
            timeline_rows,
            title="replica-count timeline",
        )
    )
    return 0


def _sweep_scenario_payload(args: argparse.Namespace) -> dict:
    """The sweep's scenario recipe, persisted in the queue manifest.

    Everything a worker on another host needs to rebuild the exact
    factories (closures never cross the filesystem): the homogeneous
    scenario's parameters, the protocol suite, and the seed walk.
    """
    return {
        "kind": "homogeneous",
        "utility": args.utility,
        "param": args.param,
        "n_nodes": args.nodes,
        "n_items": args.items,
        "rho": args.rho,
        "mu": args.mu,
        "duration": args.duration,
        "total_demand": args.demand,
        "include": list(args.protocols),
        "n_trials": args.trials,
        "base_seed": args.seed,
    }


def _sweep_factories_from_payload(payload: dict):
    """Rebuild (scenario, protocols, baseline) from a stored recipe."""
    if payload.get("kind") != "homogeneous":
        raise ConfigurationError(
            f"unsupported sweep scenario kind {payload.get('kind')!r}"
        )
    family = {
        "step": StepUtility,
        "exp": ExponentialUtility,
        "power": power_family,
    }.get(payload["utility"])
    if family is None:
        raise ConfigurationError(
            f"unknown utility family {payload['utility']!r}"
        )
    scenario = homogeneous_scenario(
        family(payload["param"]),
        n_nodes=int(payload["n_nodes"]),
        n_items=int(payload["n_items"]),
        rho=int(payload["rho"]),
        mu=float(payload["mu"]),
        duration=float(payload["duration"]),
        total_demand=float(payload["total_demand"]),
        record_interval=None,
    )
    include = tuple(payload["include"])
    protocols = standard_protocols(scenario, include=include)
    baseline = "OPT" if "OPT" in include else include[0]
    return scenario, protocols, baseline


def _sweep_spec_from_payload(payload: dict, cache_setting) -> "SweepSpec":
    """A worker-side :class:`~repro.dist.SweepSpec` from a stored recipe."""
    from .dist.executors import SweepSpec

    scenario, protocols, _ = _sweep_factories_from_payload(payload)
    return SweepSpec(
        trace_factory=scenario.trace_factory,
        demand=scenario.demand,
        config=scenario.config,
        protocols=protocols,
        n_clients=None,
        faults=None,
        on_error="skip",
        attempts_per_run=1,
        retry_backoff=0.1,
        max_backoff=5.0,
        profile_dir=None,
        cache=resolve_run_cache(cache_setting),
        base_seed=int(payload["base_seed"]),
        n_trials=int(payload["n_trials"]),
    )


def _run_queue_sweep(
    queue_root: str, payload: dict, args: argparse.Namespace
) -> int:
    """Create-or-attach the queue and run a supervised sweep to the end."""
    from .dist import WorkQueueExecutor
    from .experiments import run_comparison
    from .obs import metrics as obs_metrics

    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        # Asking for a metrics artifact implies wanting collection on;
        # forked workers inherit the flag.
        obs_metrics.set_enabled(True)
    scenario, protocols, baseline = _sweep_factories_from_payload(payload)
    executor = WorkQueueExecutor(
        queue_root,
        n_workers=args.workers,
        ttl=args.ttl,
        max_claims=args.max_claims,
        scenario=payload,
    )
    result = run_comparison(
        trace_factory=scenario.trace_factory,
        demand=scenario.demand,
        config=scenario.config,
        protocols=protocols,
        n_trials=int(payload["n_trials"]),
        base_seed=int(payload["base_seed"]),
        baseline=baseline,
        on_error="skip",
        progress=args.progress or None,
        run_cache=_cache_setting(args),
        executor=executor,
        share_event_streams=not getattr(args, "no_share_streams", False),
        trial_spill_dir=getattr(args, "spill_dir", None),
    )
    print(result.render(title=f"distributed sweep ({queue_root})"))
    dist_info = (result.manifest or {}).get("dist", {})
    units = dist_info.get("units", {})
    if units:
        rows = [
            [
                unit,
                info.get("status", "?"),
                info.get("worker") or "-",
                info.get("claim") if info.get("claim") is not None else "-",
                info.get("requeues", 0),
                info.get("failures", 0),
            ]
            for unit, info in sorted(units.items())
        ]
        print()
        print(
            render_table(
                ["unit", "status", "worker", "claim", "requeues", "failures"],
                rows,
                title="work-unit attribution",
            )
        )
    if metrics_out:
        from .dist.clock import SystemClock

        obs_metrics.write_snapshot_jsonl(
            metrics_out,
            obs_metrics.registry().snapshot(),
            t=SystemClock().now(),
            meta={"queue": queue_root},
        )
        print(f"metrics snapshot appended to {metrics_out}")
    return 0


def _cmd_sweep_start(args: argparse.Namespace) -> int:
    return _run_queue_sweep(args.queue, _sweep_scenario_payload(args), args)


def _cmd_sweep_resume(args: argparse.Namespace) -> int:
    from .dist import WorkQueue

    queue = WorkQueue.open(args.queue)
    payload = queue.manifest.get("scenario")
    if payload is None:
        raise ConfigurationError(
            f"queue {args.queue} has no stored scenario; it was created "
            "programmatically — resume it from the owning script instead"
        )
    args.ttl = queue.ttl
    args.max_claims = queue.max_claims
    return _run_queue_sweep(args.queue, payload, args)


def _cmd_sweep_worker(args: argparse.Namespace) -> int:
    import os as _os
    import platform as _platform

    from .dist import QueueWorker, WorkQueue

    queue = WorkQueue.open(args.queue)
    payload = queue.manifest.get("scenario")
    if payload is None:
        raise ConfigurationError(
            f"queue {args.queue} has no stored scenario; external workers "
            "can only join CLI-started sweeps"
        )
    worker_id = args.worker_id or (
        f"cli-{_platform.node()}-{_os.getpid()}"
    )
    spec = _sweep_spec_from_payload(payload, _cache_setting(args))
    QueueWorker(queue, spec, worker_id, offset=args.offset).run()
    status = queue.status()
    print(
        f"worker {worker_id} done: {status['published']} published, "
        f"{status['quarantined']} quarantined, "
        f"{status['pending']} pending"
    )
    return 0


def _cmd_sweep_status(args: argparse.Namespace) -> int:
    from .dist import WorkQueue
    from .obs.events import SWEEP_KINDS

    queue = WorkQueue.open(args.queue)
    status = queue.status()
    print(
        f"queue {status['root']}: {status['n_units']} units, "
        f"{status['published']} published, "
        f"{status['quarantined']} quarantined, "
        f"{status['pending']} pending"
    )
    for lease in status["live_leases"]:
        print(
            f"  lease {lease['unit']} held by {lease['worker']} "
            f"(host={lease['host']} pid={lease['pid']} "
            f"claim={lease['claim']})"
        )
    counts: dict = {}
    for event in queue.read_events():
        kind = event.get("kind", "?")
        counts[kind] = counts.get(kind, 0) + 1
    if counts:
        summary = ", ".join(
            f"{kind}={counts[kind]}"
            for kind in SWEEP_KINDS
            if kind in counts
        )
        print(f"  events: {summary}")
    quarantined = [
        unit for unit in queue.unit_ids if queue.is_quarantined(unit)
    ]
    for unit in quarantined:
        info = queue.read_quarantine(unit) or {}
        print(
            f"  quarantined {unit}: {info.get('reason', '?')} "
            f"({info.get('claims_used', '?')} claims)"
        )
    return 0


def _cmd_sweep_watch(args: argparse.Namespace) -> int:
    from .dist import WorkQueue
    from .dist.watch import watch

    queue = WorkQueue.open(args.queue)
    watch(
        queue,
        once=args.once,
        interval=args.interval,
        window_s=args.window,
    )
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from .obs import metrics as obs_metrics

    with open(args.source, "r", encoding="utf-8") as handle:
        text = handle.read()
    data = None
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        # JSONL time series: the last record carrying metrics wins.
        for line in reversed(text.splitlines()):
            line = line.strip()
            if not line:
                continue
            try:
                candidate = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(candidate, dict) and "metrics" in candidate:
                data = candidate
                break
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"{args.source} holds no metrics snapshot (expected a "
            "registry snapshot, a manifest, or a metrics JSONL series)"
        )
    try:
        snapshot = obs_metrics.coerce_snapshot(data)
    except ValueError as error:
        raise ConfigurationError(f"{args.source}: {error}") from None
    if args.format == "prometheus":
        rendered = obs_metrics.render_prometheus(snapshot)
    else:
        rendered = json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"wrote {args.format} snapshot to {args.output}")
    else:
        sys.stdout.write(rendered)
    return 0


def _cmd_allocate(args: argparse.Namespace) -> int:
    utility = _build_utility(args)
    demand = DemandModel.pareto(
        args.items, omega=args.omega, total_rate=args.demand
    )
    greedy = greedy_homogeneous(
        demand, utility, args.mu, args.nodes, args.rho
    )
    relaxed = solve_relaxed(
        demand, utility, args.mu, args.nodes, budget=args.rho * args.nodes
    )
    rows = [
        [i, f"{demand.rates[i]:.4f}", int(greedy.counts[i]), f"{relaxed.counts[i]:.2f}"]
        for i in range(min(args.items, args.top))
    ]
    print(
        render_table(
            ["item", "demand", "greedy x_i", "relaxed x_i"],
            rows,
            title=f"optimal allocation ({utility.name}), welfare={greedy.welfare:.4f}",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'The Age of Impatience' (CoNEXT 2009): "
            "optimal replication for opportunistic P2P caching."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figure", help="regenerate a paper figure")
    fig.add_argument("number", type=int, choices=range(1, 7))
    fig.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "process-pool width for simulation sweeps (default: "
            "REPRO_BENCH_WORKERS or serial); results are bit-identical"
        ),
    )
    fig.add_argument(
        "--progress",
        action="store_true",
        help="log live per-run sweep progress to stderr",
    )
    fig.add_argument(
        "--profile",
        metavar="DIR",
        default=None,
        help="dump per-worker cProfile stats (.pstats) into DIR",
    )
    _add_cache_arguments(fig)
    fig.set_defaults(func=_cmd_figure)

    tbl = sub.add_parser("table1", help="print and verify Table 1")
    tbl.set_defaults(func=_cmd_table1)

    sim = sub.add_parser("simulate", help="run one simulation")
    _add_utility_arguments(sim)
    sim.add_argument(
        "--protocol",
        default="QCR",
        choices=("OPT", "QCR", "QCRWOM", "SQRT", "PROP", "UNI", "DOM", "PASSIVE"),
    )
    sim.add_argument("--nodes", type=int, default=N_NODES)
    sim.add_argument("--items", type=int, default=N_ITEMS)
    sim.add_argument("--rho", type=int, default=RHO)
    sim.add_argument("--mu", type=float, default=MU)
    sim.add_argument("--duration", type=float, default=2000.0)
    sim.add_argument("--demand", type=float, default=TOTAL_DEMAND)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="record request-lifecycle telemetry as JSON lines to PATH",
    )
    sim.add_argument(
        "--manifest-out",
        metavar="PATH",
        default=None,
        help="write the run provenance manifest as JSON to PATH",
    )
    _add_cache_arguments(sim)
    sim.set_defaults(func=_cmd_simulate)

    trc = sub.add_parser(
        "trace",
        help="generate contact traces / analyze telemetry traces",
    )
    trc_sub = trc.add_subparsers(dest="trace_command", required=True)
    for kind in ("poisson", "conference", "vehicular"):
        gen = trc_sub.add_parser(
            kind, help=f"generate a synthetic {kind} contact trace"
        )
        gen.add_argument("--nodes", type=int, default=N_NODES)
        gen.add_argument("--mu", type=float, default=MU)
        gen.add_argument("--duration", type=float, default=2000.0)
        gen.add_argument("--seed", type=int, default=0)
        gen.add_argument(
            "--output",
            help="save the trace here (.ctb: binary, .jsonl: JSONL, else CSV)",
        )
        gen.set_defaults(func=_cmd_trace, kind=kind)

    trc_summary = trc_sub.add_parser(
        "summary", help="summarize a JSONL telemetry trace"
    )
    trc_summary.add_argument("file", help="JSONL trace file")
    trc_summary.add_argument(
        "--validate",
        action="store_true",
        help="check every event against the schema while reading",
    )
    trc_summary.add_argument(
        "--json", action="store_true", help="print the summary as JSON"
    )
    trc_summary.set_defaults(func=_cmd_trace_summary)

    trc_filter = trc_sub.add_parser(
        "filter", help="select events from a JSONL telemetry trace"
    )
    trc_filter.add_argument("file", help="JSONL trace file")
    trc_filter.add_argument(
        "--kind",
        action="append",
        help="keep only this event kind (repeatable)",
    )
    trc_filter.add_argument("--item", type=int, default=None)
    trc_filter.add_argument("--node", type=int, default=None)
    trc_filter.add_argument("--t-min", type=float, default=None)
    trc_filter.add_argument("--t-max", type=float, default=None)
    trc_filter.add_argument(
        "--output", help="write JSONL here (default: stdout)"
    )
    trc_filter.set_defaults(func=_cmd_trace_filter)

    trc_convert = trc_sub.add_parser(
        "convert",
        help=(
            "convert a contact trace between csv/jsonl/binary, or a "
            "JSONL telemetry trace to CSV/JSONL"
        ),
    )
    trc_convert.add_argument(
        "file", help="contact trace (any format) or JSONL telemetry trace"
    )
    trc_convert.add_argument("output", help="destination path")
    trc_convert.add_argument(
        "--format",
        choices=("csv", "jsonl", "binary"),
        default="csv",
        help="binary: memmap-ready column directory (contact traces only)",
    )
    trc_convert.set_defaults(func=_cmd_trace_convert)

    trc_cdf = trc_sub.add_parser(
        "cdf",
        help=(
            "compare per-item empirical delay CDFs against the "
            "Lemma 1 exponential Exp(mu * x_i)"
        ),
    )
    trc_cdf.add_argument("file", help="JSONL trace file")
    trc_cdf.add_argument(
        "--mu",
        type=float,
        required=True,
        help="pairwise meeting rate of the mobility model",
    )
    trc_cdf.add_argument(
        "--item",
        type=int,
        action="append",
        help="restrict to this item (repeatable; default: all)",
    )
    trc_cdf.add_argument(
        "--min-samples",
        type=int,
        default=5,
        help="skip items with fewer fulfilled requests (default: 5)",
    )
    trc_cdf.add_argument(
        "--output", help="write the full comparison as JSON to this path"
    )
    trc_cdf.set_defaults(func=_cmd_trace_cdf)

    churn = sub.add_parser(
        "churn", help="run a crash-wave robustness scenario (QCR vs OPT)"
    )
    _add_utility_arguments(churn)
    churn.add_argument("--nodes", type=int, default=N_NODES)
    churn.add_argument("--items", type=int, default=N_ITEMS)
    churn.add_argument("--rho", type=int, default=RHO)
    churn.add_argument("--mu", type=float, default=MU)
    churn.add_argument("--duration", type=float, default=2000.0)
    churn.add_argument("--demand", type=float, default=TOTAL_DEMAND)
    churn.add_argument("--seed", type=int, default=0)
    churn.add_argument(
        "--crash-time",
        type=float,
        default=500.0,
        help="when the crash wave hits (default: 500)",
    )
    churn.add_argument(
        "--crash-fraction",
        type=float,
        default=0.5,
        help="fraction of nodes taken down (default: 0.5)",
    )
    churn.add_argument(
        "--recover-time",
        type=float,
        default=None,
        help="when crashed nodes come back (default: never)",
    )
    churn.add_argument(
        "--keep-caches",
        action="store_true",
        help="crashed nodes keep their cache contents",
    )
    churn.add_argument(
        "--lose-sticky",
        action="store_true",
        help="cache wipes destroy sticky replicas too (items can go extinct)",
    )
    churn.add_argument(
        "--drop-prob",
        type=float,
        default=0.0,
        help="probability any contact silently fails (default: 0)",
    )
    churn.add_argument(
        "--record-interval",
        type=float,
        default=100.0,
        help="replica-count snapshot cadence (default: 100)",
    )
    churn.set_defaults(func=_cmd_churn)

    sweep = sub.add_parser(
        "sweep",
        help=(
            "fault-tolerant distributed sweeps over an on-disk work "
            "queue (see docs/distributed_sweeps.md)"
        ),
    )
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)

    sweep_start = sweep_sub.add_parser(
        "start",
        help="create a work queue and run a supervised sweep to completion",
    )
    sweep_start.add_argument(
        "queue", help="queue directory (shared filesystem for multi-host)"
    )
    _add_utility_arguments(sweep_start)
    sweep_start.add_argument("--nodes", type=int, default=N_NODES)
    sweep_start.add_argument("--items", type=int, default=N_ITEMS)
    sweep_start.add_argument("--rho", type=int, default=RHO)
    sweep_start.add_argument("--mu", type=float, default=MU)
    sweep_start.add_argument("--duration", type=float, default=2000.0)
    sweep_start.add_argument("--demand", type=float, default=TOTAL_DEMAND)
    sweep_start.add_argument("--trials", type=int, default=5)
    sweep_start.add_argument("--seed", type=int, default=0)
    sweep_start.add_argument(
        "--protocols",
        nargs="+",
        default=("OPT", "QCR", "SQRT", "PROP", "UNI"),
        help="protocol suite (default: OPT QCR SQRT PROP UNI)",
    )
    sweep_start.add_argument(
        "--workers",
        type=int,
        default=2,
        help="local worker processes to supervise (default: 2)",
    )
    sweep_start.add_argument(
        "--ttl",
        type=float,
        default=30.0,
        help="lease time-to-live in seconds (default: 30)",
    )
    sweep_start.add_argument(
        "--max-claims",
        type=int,
        default=3,
        help="claim budget before a unit is quarantined (default: 3)",
    )
    sweep_start.add_argument(
        "--progress", action="store_true", help="log each completed run"
    )
    sweep_start.add_argument(
        "--metrics-out",
        default=None,
        help=(
            "append the supervisor's final metrics snapshot to this "
            "JSONL file (implies metrics collection on)"
        ),
    )
    sweep_start.add_argument(
        "--spill-dir",
        default=None,
        help=(
            "spill each realized trial trace to a .ctb file under this "
            "directory so workers memory-map it instead of regenerating "
            "(zero-copy trial handoff; results are bit-identical)"
        ),
    )
    sweep_start.add_argument(
        "--no-share-streams",
        action="store_true",
        help=(
            "disable per-trial event-stream sharing (merge the event "
            "stream once per protocol instead of once per trial; "
            "debugging aid — results are bit-identical either way)"
        ),
    )
    _add_cache_arguments(sweep_start)
    sweep_start.set_defaults(func=_cmd_sweep_start)

    sweep_worker = sweep_sub.add_parser(
        "worker",
        help="join an existing queue as an extra worker (any host)",
    )
    sweep_worker.add_argument("queue", help="queue directory to join")
    sweep_worker.add_argument(
        "--worker-id",
        default=None,
        help="stable worker name (default: cli-<host>-<pid>)",
    )
    sweep_worker.add_argument(
        "--offset",
        type=int,
        default=0,
        help="claim-scan rotation offset (spread contention; default: 0)",
    )
    _add_cache_arguments(sweep_worker)
    sweep_worker.set_defaults(func=_cmd_sweep_worker)

    sweep_status = sweep_sub.add_parser(
        "status", help="print queue progress, live leases, and quarantine"
    )
    sweep_status.add_argument("queue", help="queue directory to inspect")
    sweep_status.set_defaults(func=_cmd_sweep_status)

    sweep_watch = sweep_sub.add_parser(
        "watch",
        help=(
            "live fleet dashboard over a queue directory (workers, "
            "throughput, ETA) — read-side, attachable from any host"
        ),
    )
    sweep_watch.add_argument("queue", help="queue directory to watch")
    sweep_watch.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit (CI artifact mode)",
    )
    sweep_watch.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between frames in loop mode (default: 2)",
    )
    sweep_watch.add_argument(
        "--window",
        type=float,
        default=120.0,
        help="throughput/ETA averaging window in seconds (default: 120)",
    )
    sweep_watch.set_defaults(func=_cmd_sweep_watch)

    sweep_resume = sweep_sub.add_parser(
        "resume",
        help=(
            "re-supervise an interrupted queue sweep (published results "
            "survive; only pending units run)"
        ),
    )
    sweep_resume.add_argument("queue", help="queue directory to resume")
    sweep_resume.add_argument(
        "--workers",
        type=int,
        default=2,
        help="local worker processes to supervise (default: 2)",
    )
    sweep_resume.add_argument(
        "--progress", action="store_true", help="log each completed run"
    )
    _add_cache_arguments(sweep_resume)
    sweep_resume.set_defaults(func=_cmd_sweep_resume)

    bench = sub.add_parser(
        "bench", help="time the engine and the parallel runner"
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="reduced horizons/trials for CI smoke runs",
    )
    bench.add_argument(
        "--workers",
        type=int,
        default=4,
        help="process-pool width for the parallel sweep (default: 4)",
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="engine timing repeats, best-of (default: 1 quick, 3 full)",
    )
    bench.add_argument(
        "--output",
        default=BENCH_FILENAME,
        help=f"report path (default: {BENCH_FILENAME})",
    )
    bench.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help=(
            "fail (exit 1) when the measured engine min_speedup falls "
            "below this threshold (CI regression gate)"
        ),
    )
    bench.set_defaults(func=_cmd_bench)

    cache_cmd = sub.add_parser(
        "cache", help="inspect or clear the simulation run cache"
    )
    cache_sub = cache_cmd.add_subparsers(dest="cache_command", required=True)
    for cache_action, cache_help in (
        ("info", "print the cache root, entry count, and total size"),
        ("clear", "delete every cached simulation run"),
    ):
        cache_action_parser = cache_sub.add_parser(
            cache_action, help=cache_help
        )
        cache_action_parser.add_argument(
            "--dir",
            default=None,
            help=(
                "cache root (default: REPRO_SIM_CACHE or "
                "~/.cache/repro/simcache)"
            ),
        )
        cache_action_parser.set_defaults(func=_cmd_cache)

    lint = sub.add_parser(
        "lint", help="run the repo-specific static-analysis rules"
    )
    add_lint_arguments(lint)
    lint.set_defaults(func=cmd_lint)

    analyze = sub.add_parser(
        "analyze",
        help=(
            "run the whole-program effect analyzer (determinism, "
            "durability, schema drift)"
        ),
    )
    add_analyze_arguments(analyze)
    analyze.set_defaults(func=cmd_analyze)

    metrics_cmd = sub.add_parser(
        "metrics",
        help=(
            "dump or convert a metrics snapshot (registry JSON, "
            "manifest, or JSONL series) to Prometheus text or JSON"
        ),
    )
    metrics_cmd.add_argument(
        "source",
        help=(
            "snapshot file: a metrics JSONL series, a run/sweep "
            "manifest JSON, or a raw registry snapshot JSON"
        ),
    )
    metrics_cmd.add_argument(
        "--format",
        choices=("prometheus", "json"),
        default="prometheus",
        help="output format (default: prometheus)",
    )
    metrics_cmd.add_argument(
        "--output",
        "-o",
        default=None,
        help="write here instead of stdout",
    )
    metrics_cmd.set_defaults(func=_cmd_metrics)

    alloc = sub.add_parser("allocate", help="print the optimal allocation")
    _add_utility_arguments(alloc)
    alloc.add_argument("--nodes", type=int, default=N_NODES)
    alloc.add_argument("--items", type=int, default=N_ITEMS)
    alloc.add_argument("--rho", type=int, default=RHO)
    alloc.add_argument("--mu", type=float, default=MU)
    alloc.add_argument("--omega", type=float, default=1.0)
    alloc.add_argument("--demand", type=float, default=TOTAL_DEMAND)
    alloc.add_argument("--top", type=int, default=15)
    alloc.set_defaults(func=_cmd_allocate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, TraceFileError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
