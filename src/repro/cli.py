"""Command-line interface: ``repro`` / ``python -m repro``.

Subcommands:

``repro figure {1..6}``
    Regenerate a paper figure's data series and print it.
``repro table1``
    Print Table 1 with closed-form vs. numeric verification.
``repro simulate``
    Run a single simulation with a chosen protocol and print metrics.
``repro trace``
    Generate a synthetic trace, print its statistics, optionally save it.
``repro allocate``
    Print the optimal allocation for a homogeneous scenario.
``repro churn``
    Run a crash-wave robustness scenario (QCR vs static OPT under fault
    injection) and print recovery metrics plus a replica-count timeline.
``repro bench``
    Time the simulation engine against its frozen pre-optimization
    baseline and a serial vs. parallel sweep; write ``BENCH_speed.json``.
``repro lint``
    Run the repo's custom static-analysis rules (determinism,
    sim-invariants, fork safety — see docs/static_analysis.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .allocation import greedy_homogeneous, solve_relaxed
from .contacts import save_csv, summarize
from .contacts.synthetic import (
    ConferenceTraceConfig,
    VehicularTraceConfig,
    conference_trace,
    vehicular_trace,
)
from .contacts import homogeneous_poisson_trace
from .demand import DemandModel, generate_requests
from .errors import ConfigurationError, ReproError
from .faults import FaultSchedule
from .lint.cli import add_lint_arguments, cmd_lint
from .experiments import (
    BENCH_FILENAME,
    current_profile,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    render_speed_report,
    render_table,
    run_speed_benchmark,
    verify_table1,
)
from .experiments.scenarios import (
    MU,
    N_ITEMS,
    N_NODES,
    RHO,
    TOTAL_DEMAND,
    homogeneous_scenario,
    standard_protocols,
)
from .sim import simulate
from .utility import (
    DelayUtility,
    ExponentialUtility,
    StepUtility,
    power_family,
)

__all__ = ["main"]


def _build_utility(args: argparse.Namespace) -> DelayUtility:
    if args.utility == "step":
        return StepUtility(args.param)
    if args.utility == "exp":
        return ExponentialUtility(args.param)
    if args.utility == "power":
        return power_family(args.param)
    raise ReproError(f"unknown utility family {args.utility!r}")


def _add_utility_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--utility",
        choices=("step", "exp", "power"),
        default="step",
        help="delay-utility family (default: step)",
    )
    parser.add_argument(
        "--param",
        type=float,
        default=10.0,
        help="family parameter: tau, nu, or alpha (default: 10)",
    )


def _cmd_figure(args: argparse.Namespace) -> int:
    profile = current_profile()
    workers = args.workers if args.workers is not None else profile.n_workers
    builders = {
        1: lambda: figure1(),
        2: lambda: figure2(),
        3: lambda: figure3(profile, n_workers=workers),
        4: lambda: figure4(profile, n_workers=workers),
        5: lambda: figure5(profile, n_workers=workers),
        6: lambda: figure6(profile, n_workers=workers),
    }
    result = builders[args.number]()
    print(result.render())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    report = run_speed_benchmark(
        quick=args.quick,
        n_workers=args.workers,
        repeats=args.repeats,
        output=args.output,
    )
    print(render_speed_report(report))
    print(f"\nwrote {args.output}")
    return 0


def _cmd_table1(_args: argparse.Namespace) -> int:
    verification = verify_table1()
    print(verification.render())
    print(f"\nmax relative error: {verification.max_relative_error:.2e}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    utility = _build_utility(args)
    scenario = homogeneous_scenario(
        utility,
        n_nodes=args.nodes,
        n_items=args.items,
        rho=args.rho,
        mu=args.mu,
        duration=args.duration,
        total_demand=args.demand,
    )
    factories = standard_protocols(scenario, include=(args.protocol,))
    trace = scenario.trace_factory(args.seed)
    requests = generate_requests(
        scenario.demand, trace.n_nodes, trace.duration, seed=args.seed + 1
    )
    protocol = factories[args.protocol](trace, requests)
    result = simulate(
        trace, requests, scenario.config, protocol, seed=args.seed + 2
    )
    rows = [[key, value] for key, value in result.summary().items()]
    print(render_table(["metric", "value"], rows, title=f"{args.protocol} run"))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.kind == "poisson":
        trace = homogeneous_poisson_trace(
            args.nodes, args.mu, args.duration, seed=args.seed
        )
    elif args.kind == "conference":
        trace = conference_trace(
            ConferenceTraceConfig(n_nodes=args.nodes), seed=args.seed
        )
    else:
        trace = vehicular_trace(
            VehicularTraceConfig(n_nodes=args.nodes), seed=args.seed
        )
    print(summarize(trace))
    if args.output:
        save_csv(trace, args.output)
        print(f"saved {len(trace)} contacts to {args.output}")
    return 0


def _cmd_churn(args: argparse.Namespace) -> int:
    if not 0.0 < args.crash_fraction <= 1.0:
        raise ConfigurationError(
            f"--crash-fraction must be in (0, 1], got {args.crash_fraction}"
        )
    if not 0.0 <= args.crash_time < args.duration:
        raise ConfigurationError(
            "--crash-time must lie within the simulation horizon"
        )
    utility = _build_utility(args)
    scenario = homogeneous_scenario(
        utility,
        n_nodes=args.nodes,
        n_items=args.items,
        rho=args.rho,
        mu=args.mu,
        duration=args.duration,
        total_demand=args.demand,
        record_interval=args.record_interval,
    )
    n_crashed = max(1, round(args.crash_fraction * args.nodes))
    faults = FaultSchedule.crash_wave(
        args.crash_time,
        range(n_crashed),
        recover_at=args.recover_time,
        wipe_cache=not args.keep_caches,
        sticky_survives=not args.lose_sticky,
        drop_prob=args.drop_prob,
    )
    factories = standard_protocols(scenario, include=("OPT", "QCR"))
    trace = scenario.trace_factory(args.seed)
    requests = generate_requests(
        scenario.demand, trace.n_nodes, trace.duration, seed=args.seed + 1
    )
    timelines = {}
    rows = []
    for name in ("OPT", "QCR"):
        protocol = factories[name](trace, requests)
        result = simulate(
            trace,
            requests,
            scenario.config,
            protocol,
            seed=args.seed + 2,
            faults=faults,
        )
        robustness = result.robustness_summary()
        timelines[name] = (
            result.snapshot_times,
            result.snapshot_counts.sum(axis=1),
        )
        rows.append(
            [
                name,
                f"{result.gain_rate:.4f}",
                int(robustness["n_replicas_lost"]),
                int(result.final_counts.sum()),
                f"{robustness['total_downtime']:.0f}",
                (
                    f"{robustness['median_recovery_time']:.0f}"
                    if robustness["n_loss_episodes_recovered"]
                    else "never"
                ),
            ]
        )
    print(
        render_table(
            [
                "protocol",
                "utility/min",
                "replicas lost",
                "final replicas",
                "downtime",
                "median recovery",
            ],
            rows,
            title=(
                f"crash wave: {n_crashed}/{args.nodes} nodes at "
                f"t={args.crash_time:g}"
            ),
        )
    )
    times, _ = timelines["QCR"]
    timeline_rows = [
        [f"{t:.0f}", int(timelines["OPT"][1][k]), int(timelines["QCR"][1][k])]
        for k, t in enumerate(times)
    ]
    print()
    print(
        render_table(
            ["time", "OPT replicas", "QCR replicas"],
            timeline_rows,
            title="replica-count timeline",
        )
    )
    return 0


def _cmd_allocate(args: argparse.Namespace) -> int:
    utility = _build_utility(args)
    demand = DemandModel.pareto(
        args.items, omega=args.omega, total_rate=args.demand
    )
    greedy = greedy_homogeneous(
        demand, utility, args.mu, args.nodes, args.rho
    )
    relaxed = solve_relaxed(
        demand, utility, args.mu, args.nodes, budget=args.rho * args.nodes
    )
    rows = [
        [i, f"{demand.rates[i]:.4f}", int(greedy.counts[i]), f"{relaxed.counts[i]:.2f}"]
        for i in range(min(args.items, args.top))
    ]
    print(
        render_table(
            ["item", "demand", "greedy x_i", "relaxed x_i"],
            rows,
            title=f"optimal allocation ({utility.name}), welfare={greedy.welfare:.4f}",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'The Age of Impatience' (CoNEXT 2009): "
            "optimal replication for opportunistic P2P caching."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figure", help="regenerate a paper figure")
    fig.add_argument("number", type=int, choices=range(1, 7))
    fig.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "process-pool width for simulation sweeps (default: "
            "REPRO_BENCH_WORKERS or serial); results are bit-identical"
        ),
    )
    fig.set_defaults(func=_cmd_figure)

    tbl = sub.add_parser("table1", help="print and verify Table 1")
    tbl.set_defaults(func=_cmd_table1)

    sim = sub.add_parser("simulate", help="run one simulation")
    _add_utility_arguments(sim)
    sim.add_argument(
        "--protocol",
        default="QCR",
        choices=("OPT", "QCR", "QCRWOM", "SQRT", "PROP", "UNI", "DOM", "PASSIVE"),
    )
    sim.add_argument("--nodes", type=int, default=N_NODES)
    sim.add_argument("--items", type=int, default=N_ITEMS)
    sim.add_argument("--rho", type=int, default=RHO)
    sim.add_argument("--mu", type=float, default=MU)
    sim.add_argument("--duration", type=float, default=2000.0)
    sim.add_argument("--demand", type=float, default=TOTAL_DEMAND)
    sim.add_argument("--seed", type=int, default=0)
    sim.set_defaults(func=_cmd_simulate)

    trc = sub.add_parser("trace", help="generate a synthetic trace")
    trc.add_argument(
        "kind", choices=("poisson", "conference", "vehicular")
    )
    trc.add_argument("--nodes", type=int, default=N_NODES)
    trc.add_argument("--mu", type=float, default=MU)
    trc.add_argument("--duration", type=float, default=2000.0)
    trc.add_argument("--seed", type=int, default=0)
    trc.add_argument("--output", help="save as CSV to this path")
    trc.set_defaults(func=_cmd_trace)

    churn = sub.add_parser(
        "churn", help="run a crash-wave robustness scenario (QCR vs OPT)"
    )
    _add_utility_arguments(churn)
    churn.add_argument("--nodes", type=int, default=N_NODES)
    churn.add_argument("--items", type=int, default=N_ITEMS)
    churn.add_argument("--rho", type=int, default=RHO)
    churn.add_argument("--mu", type=float, default=MU)
    churn.add_argument("--duration", type=float, default=2000.0)
    churn.add_argument("--demand", type=float, default=TOTAL_DEMAND)
    churn.add_argument("--seed", type=int, default=0)
    churn.add_argument(
        "--crash-time",
        type=float,
        default=500.0,
        help="when the crash wave hits (default: 500)",
    )
    churn.add_argument(
        "--crash-fraction",
        type=float,
        default=0.5,
        help="fraction of nodes taken down (default: 0.5)",
    )
    churn.add_argument(
        "--recover-time",
        type=float,
        default=None,
        help="when crashed nodes come back (default: never)",
    )
    churn.add_argument(
        "--keep-caches",
        action="store_true",
        help="crashed nodes keep their cache contents",
    )
    churn.add_argument(
        "--lose-sticky",
        action="store_true",
        help="cache wipes destroy sticky replicas too (items can go extinct)",
    )
    churn.add_argument(
        "--drop-prob",
        type=float,
        default=0.0,
        help="probability any contact silently fails (default: 0)",
    )
    churn.add_argument(
        "--record-interval",
        type=float,
        default=100.0,
        help="replica-count snapshot cadence (default: 100)",
    )
    churn.set_defaults(func=_cmd_churn)

    bench = sub.add_parser(
        "bench", help="time the engine and the parallel runner"
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="reduced horizons/trials for CI smoke runs",
    )
    bench.add_argument(
        "--workers",
        type=int,
        default=4,
        help="process-pool width for the parallel sweep (default: 4)",
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="engine timing repeats, best-of (default: 1 quick, 3 full)",
    )
    bench.add_argument(
        "--output",
        default=BENCH_FILENAME,
        help=f"report path (default: {BENCH_FILENAME})",
    )
    bench.set_defaults(func=_cmd_bench)

    lint = sub.add_parser(
        "lint", help="run the repo-specific static-analysis rules"
    )
    add_lint_arguments(lint)
    lint.set_defaults(func=cmd_lint)

    alloc = sub.add_parser("allocate", help="print the optimal allocation")
    _add_utility_arguments(alloc)
    alloc.add_argument("--nodes", type=int, default=N_NODES)
    alloc.add_argument("--items", type=int, default=N_ITEMS)
    alloc.add_argument("--rho", type=int, default=RHO)
    alloc.add_argument("--mu", type=float, default=MU)
    alloc.add_argument("--omega", type=float, default=1.0)
    alloc.add_argument("--demand", type=float, default=TOTAL_DEMAND)
    alloc.add_argument("--top", type=int, default=15)
    alloc.set_defaults(func=_cmd_allocate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
