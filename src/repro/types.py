"""Shared type aliases used across the repro library.

Items and nodes are identified by dense non-negative integers: item ``i`` in
``range(n_items)`` and node ``m`` in ``range(n_nodes)``.  Dense ids keep every
hot path a plain array index, which matters for the simulator's inner loop.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import numpy.typing as npt

#: Identifier of a content item (dense index into ``range(n_items)``).
ItemId = int

#: Identifier of a node (dense index into ``range(n_nodes)``).
NodeId = int

#: A scalar or numpy array of floats, accepted by vectorized utility methods.
ArrayLike = Union[float, npt.NDArray[np.floating]]

#: Float array alias used in signatures.
FloatArray = npt.NDArray[np.float64]

#: Integer array alias used in signatures.
IntArray = npt.NDArray[np.int64]

#: Anything accepted as a random seed by :func:`numpy.random.default_rng`.
SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_rng(seed: SeedLike) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Passing an existing generator returns it unchanged so callers can thread
    one RNG through a pipeline; anything else is given to
    :func:`numpy.random.default_rng`.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
