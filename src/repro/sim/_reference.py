"""Frozen pre-optimization engine, kept as the perf baseline.

:class:`ReferenceSimulation` preserves the event loop exactly as it was
before the hot-path optimization pass (three-way head-of-stream merge
with per-``run()`` ``.tolist()`` conversions, per-event attribute
lookups, no hook-free fast path).  It exists for two reasons:

* ``repro bench`` (:mod:`repro.experiments.benchmark`) times it against
  the optimized :class:`~repro.sim.engine.Simulation` so the engine
  speedup is *measured*, not asserted, and is tracked in
  ``BENCH_speed.json`` across PRs;
* the equivalence tests assert both engines produce bit-identical
  :class:`~repro.sim.metrics.SimulationResult` objects, which is the
  correctness contract of the optimization.

Do not "improve" this module: it is deliberately the slow version.
"""

from __future__ import annotations

import math
from typing import List

from ..errors import SimulationError
from ..faults import FaultEvent
from .engine import Simulation
from .metrics import SimulationResult
from .node import NodeState, Request

__all__ = ["ReferenceSimulation"]


class ReferenceSimulation(Simulation):
    """The pre-optimization event loop on the current engine state."""

    def run(self) -> SimulationResult:
        """Process all events and return the collected metrics."""
        contact_times = self.trace.times.tolist()
        contact_a = self.trace.node_a.tolist()
        contact_b = self.trace.node_b.tolist()
        request_times = self.requests.times.tolist()
        request_items = self.requests.items.tolist()
        request_nodes = self.requests.nodes.tolist()

        fault_events: List[FaultEvent] = (
            [e for e in self.faults.events if e.time <= self.trace.duration]
            if self.faults is not None
            else []
        )
        fault_times = [e.time for e in fault_events]

        record_interval = self.config.record_interval
        next_snapshot = 0.0 if record_interval is not None else math.inf

        ci, qi, fi = 0, 0, 0
        n_contacts, n_requests = len(contact_times), len(request_times)
        n_faults = len(fault_events)
        while ci < n_contacts or qi < n_requests or fi < n_faults:
            t_request = request_times[qi] if qi < n_requests else math.inf
            t_contact = contact_times[ci] if ci < n_contacts else math.inf
            t_fault = fault_times[fi] if fi < n_faults else math.inf
            take_fault = t_fault <= t_request and t_fault <= t_contact
            take_request = not take_fault and t_request <= t_contact
            t = t_fault if take_fault else (
                t_request if take_request else t_contact
            )
            while t >= next_snapshot:
                self._take_snapshot(next_snapshot)
                next_snapshot += record_interval  # type: ignore[operator]
            if take_fault:
                self._apply_fault(t, fault_events[fi])
                fi += 1
            elif take_request:
                self._handle_request(
                    t, request_items[qi], request_nodes[qi]
                )
                qi += 1
            else:
                self._handle_contact(t, contact_a[ci], contact_b[ci])
                ci += 1
        while next_snapshot <= self.trace.duration:
            self._take_snapshot(next_snapshot)
            next_snapshot += record_interval  # type: ignore[operator]
        n_unfulfilled = self._settle_unfulfilled()
        return self.metrics.build_result(self.counts, n_unfulfilled)

    def _handle_request(self, t: float, item: int, node_id: int) -> None:
        node = self.nodes[node_id]
        if not node.online:
            self.metrics.n_requests_offline += 1
            return
        self.metrics.record_generated()
        if node.is_server and node.cache is not None and item in node.cache:
            if self.config.self_request_policy == "skip":
                self.metrics.record_skipped_self()
                return
            h0 = self.config.utility.h0
            if not math.isfinite(h0):
                raise SimulationError(
                    f"{self.config.utility.name} has h(0+) = inf and node "
                    f"{node_id} requested item {item} it already caches; "
                    "use self_request_policy='skip' or a dedicated-node "
                    "scenario"
                )
            self.metrics.record_fulfillment(t, 0.0, h0, immediate=True)
            return
        node.add_request(Request(item, node_id, t))

    def _handle_contact(self, t: float, a: int, b: int) -> None:
        node_a = self.nodes[a]
        node_b = self.nodes[b]
        if not (node_a.online and node_b.online):
            self.metrics.n_contacts_blocked += 1
            return
        if self._drop_prob > 0.0 and self._fault_rng is not None:
            if self._fault_rng.random() < self._drop_prob:
                self.metrics.n_contacts_dropped += 1
                return
        self._exchange(t, node_a, node_b)
        self._exchange(t, node_b, node_a)
        self.protocol.after_contact(self, t, node_a, node_b)

    def _exchange(
        self, t: float, requester: NodeState, provider: NodeState
    ) -> None:
        if not provider.is_server:
            return
        outstanding = requester.outstanding
        if not outstanding:
            return
        timeout = self.config.request_timeout
        if timeout is not None:
            self._expire_requests(requester, t - timeout)
            if not outstanding:
                return
        provider_cache = provider.cache
        assert provider_cache is not None
        utility = self.config.utility
        fulfilled = None
        for item, request_list in outstanding.items():
            for request in request_list:
                request.counter += 1
            if item in provider_cache:
                if fulfilled is None:
                    fulfilled = [item]
                else:
                    fulfilled.append(item)
        if fulfilled is None:
            return
        for item in fulfilled:
            for request in outstanding.pop(item):
                delay = t - request.created_at
                gain = float(utility(delay)) if delay > 0 else utility.h0
                if not math.isfinite(gain):
                    gain = 0.0
                self.metrics.record_fulfillment(t, delay, gain)
                self.protocol.on_fulfill(
                    self, t, requester, provider, item, request.counter
                )

    def _expire_requests(self, node: NodeState, deadline: float) -> None:
        utility = self.config.utility
        abandoned_gain = utility.gain_never
        credit = math.isfinite(abandoned_gain) and abandoned_gain != 0.0
        stale_items = None
        for item, request_list in node.outstanding.items():
            if any(r.created_at < deadline for r in request_list):
                if stale_items is None:
                    stale_items = [item]
                else:
                    stale_items.append(item)
        if stale_items is None:
            return
        for item in stale_items:
            request_list = node.outstanding[item]
            kept = [r for r in request_list if r.created_at >= deadline]
            expired = len(request_list) - len(kept)
            if credit:
                for _ in range(expired):
                    self.metrics.record_abandonment(deadline, abandoned_gain)
            self.metrics.n_expired += expired
            if kept:
                node.outstanding[item] = kept
            else:
                del node.outstanding[item]
