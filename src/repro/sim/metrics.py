"""Measurement collection and the simulation result record."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..types import FloatArray, IntArray

__all__ = ["MetricsCollector", "SimulationResult"]


class MetricsCollector:
    """Accumulates gains, delays, and time series during a run."""

    def __init__(
        self,
        duration: float,
        n_items: int,
        window_length: float,
        record_interval: Optional[float],
        track_items: Tuple[int, ...],
    ) -> None:
        self.duration = duration
        self.n_items = n_items
        self.window_length = window_length
        self.record_interval = record_interval
        self.track_items = track_items

        self.total_gain = 0.0
        self.n_generated = 0
        self.n_fulfilled = 0
        self.n_immediate = 0
        self.n_skipped_self = 0
        self.n_expired = 0
        self.delays: List[float] = []
        n_windows = int(np.ceil(duration / window_length))
        self.window_gains = np.zeros(max(n_windows, 1))
        self.window_fulfillments = np.zeros(max(n_windows, 1), dtype=np.int64)

        self.snapshot_times: List[float] = []
        self.snapshot_counts: List[IntArray] = []
        self.snapshot_mandates: List[IntArray] = []
        self.snapshot_tracked: List[IntArray] = []

    # ------------------------------------------------------------------
    # event hooks
    # ------------------------------------------------------------------
    def record_generated(self) -> None:
        self.n_generated += 1

    def record_skipped_self(self) -> None:
        self.n_skipped_self += 1

    def record_fulfillment(
        self, t: float, delay: float, gain: float, *, immediate: bool = False
    ) -> None:
        self.total_gain += gain
        self.n_fulfilled += 1
        if immediate:
            self.n_immediate += 1
        self.delays.append(delay)
        window = min(int(t / self.window_length), len(self.window_gains) - 1)
        self.window_gains[window] += gain
        self.window_fulfillments[window] += 1

    def record_end_of_run_gain(self, gain: float) -> None:
        """Gain credited to requests still outstanding at the horizon."""
        self.total_gain += gain
        self.window_gains[-1] += gain

    def record_abandonment(self, t: float, gain: float) -> None:
        """Gain credited to a request abandoned (timed out) at time *t*."""
        self.total_gain += gain
        window = min(int(t / self.window_length), len(self.window_gains) - 1)
        self.window_gains[window] += gain

    def record_snapshot(
        self,
        t: float,
        counts: IntArray,
        mandates: Optional[IntArray],
    ) -> None:
        self.snapshot_times.append(t)
        self.snapshot_counts.append(counts.copy())
        if mandates is not None:
            self.snapshot_mandates.append(mandates.copy())
        if self.track_items:
            self.snapshot_tracked.append(
                counts[np.asarray(self.track_items)].copy()
            )

    # ------------------------------------------------------------------
    # finalization
    # ------------------------------------------------------------------
    def build_result(
        self, final_counts: IntArray, n_unfulfilled: int
    ) -> "SimulationResult":
        delays = np.asarray(self.delays, dtype=float)
        return SimulationResult(
            delays=delays,
            duration=self.duration,
            total_gain=self.total_gain,
            n_generated=self.n_generated,
            n_fulfilled=self.n_fulfilled,
            n_immediate=self.n_immediate,
            n_skipped_self=self.n_skipped_self,
            n_expired=self.n_expired,
            n_unfulfilled=n_unfulfilled,
            mean_delay=float(delays.mean()) if len(delays) else float("nan"),
            median_delay=(
                float(np.median(delays)) if len(delays) else float("nan")
            ),
            p95_delay=(
                float(np.percentile(delays, 95)) if len(delays) else float("nan")
            ),
            window_length=self.window_length,
            window_gains=self.window_gains,
            window_fulfillments=self.window_fulfillments,
            snapshot_times=np.asarray(self.snapshot_times),
            snapshot_counts=(
                np.asarray(self.snapshot_counts)
                if self.snapshot_counts
                else np.zeros((0, self.n_items), dtype=np.int64)
            ),
            snapshot_mandates=(
                np.asarray(self.snapshot_mandates)
                if self.snapshot_mandates
                else None
            ),
            snapshot_tracked=(
                np.asarray(self.snapshot_tracked)
                if self.snapshot_tracked
                else None
            ),
            final_counts=final_counts.copy(),
        )


@dataclass(frozen=True)
class SimulationResult:
    """Everything measured in one simulation run.

    ``gain_rate`` (total gain per unit time) is the simulated counterpart
    of the social welfare ``U(x)`` and the quantity the paper's
    normalized-loss comparisons are computed from.
    """

    duration: float
    total_gain: float
    n_generated: int
    n_fulfilled: int
    n_immediate: int
    n_skipped_self: int
    n_expired: int
    n_unfulfilled: int
    #: Every fulfillment's delay (immediate self-fulfillments included as
    #: zeros), in event order — the raw material for feedback studies.
    delays: FloatArray
    mean_delay: float
    median_delay: float
    p95_delay: float
    window_length: float
    window_gains: FloatArray
    window_fulfillments: IntArray
    snapshot_times: FloatArray
    snapshot_counts: IntArray
    snapshot_mandates: Optional[IntArray]
    snapshot_tracked: Optional[IntArray]
    final_counts: IntArray

    @property
    def gain_rate(self) -> float:
        """Observed utility per unit time (the welfare estimate)."""
        return self.total_gain / self.duration

    @property
    def fulfillment_ratio(self) -> float:
        """Fraction of generated requests fulfilled before the horizon."""
        if self.n_generated == 0:
            return float("nan")
        return self.n_fulfilled / self.n_generated

    def summary(self) -> Dict[str, float]:
        """A compact dictionary of headline metrics."""
        return {
            "gain_rate": self.gain_rate,
            "total_gain": self.total_gain,
            "fulfillment_ratio": self.fulfillment_ratio,
            "mean_delay": self.mean_delay,
            "median_delay": self.median_delay,
            "p95_delay": self.p95_delay,
            "n_generated": float(self.n_generated),
            "n_unfulfilled": float(self.n_unfulfilled),
        }
