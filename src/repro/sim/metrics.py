"""Measurement collection and the simulation result record."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..types import FloatArray, IntArray

__all__ = ["MetricsCollector", "SimulationResult"]


class MetricsCollector:
    """Accumulates gains, delays, and time series during a run."""

    __slots__ = (
        "duration",
        "n_items",
        "window_length",
        "record_interval",
        "track_items",
        "total_gain",
        "n_generated",
        "n_fulfilled",
        "n_immediate",
        "n_skipped_self",
        "n_expired",
        "delays",
        "window_gains",
        "window_fulfillments",
        "snapshot_times",
        "snapshot_mandates",
        "_n_snapshots",
        "_counts_buf",
        "_track_idx",
        "_tracked_buf",
        "n_crashes",
        "n_recoveries",
        "n_replicas_lost",
        "n_mandates_lost",
        "n_requests_lost",
        "n_requests_offline",
        "n_contacts_blocked",
        "n_contacts_dropped",
        "total_downtime",
        "fault_times",
        "recovery_times",
        "_offline_since",
        "_pending_recoveries",
    )

    def __init__(
        self,
        duration: float,
        n_items: int,
        window_length: float,
        record_interval: Optional[float],
        track_items: Tuple[int, ...],
    ) -> None:
        self.duration = duration
        self.n_items = n_items
        self.window_length = window_length
        self.record_interval = record_interval
        self.track_items = track_items

        self.total_gain = 0.0
        self.n_generated = 0
        self.n_fulfilled = 0
        self.n_immediate = 0
        self.n_skipped_self = 0
        self.n_expired = 0
        self.delays: List[float] = []
        n_windows = max(int(np.ceil(duration / window_length)), 1)
        # Plain lists: per-fulfillment `arr[i] += g` on numpy scalars is
        # several times slower than list item assignment on the hot path;
        # build_result() converts to arrays once at the end.
        self.window_gains: List[float] = [0.0] * n_windows
        self.window_fulfillments: List[int] = [0] * n_windows

        self.snapshot_times: List[float] = []
        self.snapshot_mandates: List[IntArray] = []
        # Snapshot counts go into a preallocated (n_snapshots, n_items)
        # buffer instead of one fresh array copy per snapshot; capacity
        # follows from the snapshot cadence (with slack for float drift
        # in the caller's accumulating schedule) and grows on demand.
        # Invalid cadences are rejected here too (not only in
        # SimulationConfig): a direct caller passing 0/NaN/inf would
        # otherwise silently land on the capacity-0 "no snapshots" path
        # while the engine's snapshot loop spins or never fires.
        if record_interval is not None:
            if not (math.isfinite(record_interval) and record_interval > 0):
                raise ConfigurationError(
                    f"record_interval must be finite and > 0 when set, "
                    f"got {record_interval}"
                )
            # A cadence longer than the run still records the t=0
            # snapshot plus the horizon flush: never below 2 even when
            # int(duration / record_interval) == 0.
            capacity = max(int(duration / record_interval) + 2, 2)
        else:
            capacity = 0
        self._n_snapshots = 0
        self._counts_buf: IntArray = np.empty(
            (capacity, n_items), dtype=np.int64
        )
        self._track_idx = (
            np.asarray(track_items, dtype=np.int64) if track_items else None
        )
        self._tracked_buf: Optional[IntArray] = (
            np.empty((capacity, len(track_items)), dtype=np.int64)
            if track_items
            else None
        )

        # Fault-injection accounting (all zero on fault-free runs).
        self.n_crashes = 0
        self.n_recoveries = 0
        self.n_replicas_lost = 0
        self.n_mandates_lost = 0
        self.n_requests_lost = 0
        self.n_requests_offline = 0
        self.n_contacts_blocked = 0
        self.n_contacts_dropped = 0
        self.total_downtime = 0.0
        self.fault_times: List[float] = []
        self.recovery_times: List[float] = []
        #: node id -> time it went offline (open crash intervals).
        self._offline_since: Dict[int, float] = {}
        #: (loss time, pre-loss global replica count) awaiting recovery.
        self._pending_recoveries: List[Tuple[float, int]] = []

    # ------------------------------------------------------------------
    # event hooks
    # ------------------------------------------------------------------
    def record_generated(self) -> None:
        self.n_generated += 1

    def record_skipped_self(self) -> None:
        self.n_skipped_self += 1

    def record_fulfillment(
        self, t: float, delay: float, gain: float, *, immediate: bool = False
    ) -> None:
        self.total_gain += gain
        self.n_fulfilled += 1
        if immediate:
            self.n_immediate += 1
        self.delays.append(delay)
        window = min(int(t / self.window_length), len(self.window_gains) - 1)
        self.window_gains[window] += gain
        self.window_fulfillments[window] += 1

    def record_end_of_run_gain(self, gain: float) -> None:
        """Gain credited to requests still outstanding at the horizon."""
        self.total_gain += gain
        self.window_gains[-1] += gain

    def record_abandonment(self, t: float, gain: float) -> None:
        """Gain credited to a request abandoned (timed out) at time *t*."""
        self.total_gain += gain
        window = min(int(t / self.window_length), len(self.window_gains) - 1)
        self.window_gains[window] += gain

    @property
    def snapshot_counts(self) -> IntArray:
        """Replica-count snapshots recorded so far, one row per snapshot."""
        return self._counts_buf[: self._n_snapshots]

    @property
    def snapshot_tracked(self) -> Optional[IntArray]:
        """Tracked-item snapshot rows, or ``None`` without tracking."""
        if self._tracked_buf is None:
            return None
        return self._tracked_buf[: self._n_snapshots]

    def _grow_snapshot_buffers(self) -> None:
        new_capacity = max(4, 2 * len(self._counts_buf))
        counts_buf = np.empty((new_capacity, self.n_items), dtype=np.int64)
        counts_buf[: self._n_snapshots] = self._counts_buf[: self._n_snapshots]
        self._counts_buf = counts_buf
        if self._tracked_buf is not None:
            tracked_buf = np.empty(
                (new_capacity, self._tracked_buf.shape[1]), dtype=np.int64
            )
            tracked_buf[: self._n_snapshots] = self._tracked_buf[
                : self._n_snapshots
            ]
            self._tracked_buf = tracked_buf

    def record_snapshot(
        self,
        t: float,
        counts: IntArray,
        mandates: Optional[IntArray],
    ) -> None:
        index = self._n_snapshots
        if index >= len(self._counts_buf):
            self._grow_snapshot_buffers()
        self.snapshot_times.append(t)
        self._counts_buf[index] = counts
        if self._tracked_buf is not None:
            self._tracked_buf[index] = counts[self._track_idx]
        self._n_snapshots = index + 1
        if mandates is not None:
            self.snapshot_mandates.append(mandates.copy())
        if self._pending_recoveries:
            total = int(counts.sum())
            unresolved = []
            for loss_time, target in self._pending_recoveries:
                if total >= target:
                    self.recovery_times.append(t - loss_time)
                else:
                    unresolved.append((loss_time, target))
            self._pending_recoveries = unresolved

    # ------------------------------------------------------------------
    # fault hooks
    # ------------------------------------------------------------------
    def record_crash(self, t: float, node_id: int) -> None:
        self.n_crashes += 1
        self._mark_fault_time(t)
        self._offline_since.setdefault(node_id, t)

    def record_recovery(self, t: float, node_id: int) -> None:
        self.n_recoveries += 1
        started = self._offline_since.pop(node_id, None)
        if started is not None:
            # Nodes still offline at the horizon are closed out in
            # build_result().
            self.total_downtime += t - started

    def record_replica_loss(
        self, t: float, lost: int, count_before: int
    ) -> None:
        """*lost* replicas vanished at *t*; track time-to-recover.

        *count_before* is the global replica count immediately before the
        loss — the recovery target: the first subsequent snapshot whose
        total count re-attains it closes the episode and contributes one
        time-to-recover sample (the material of recovery curves).
        """
        if lost <= 0:
            return
        self.n_replicas_lost += lost
        self._mark_fault_time(t)
        self._pending_recoveries.append((t, count_before))

    def _mark_fault_time(self, t: float) -> None:
        """Record a fault instant once (crash waves share one time)."""
        if not self.fault_times or self.fault_times[-1] != t:
            self.fault_times.append(t)

    # ------------------------------------------------------------------
    # finalization
    # ------------------------------------------------------------------
    def build_result(
        self,
        final_counts: IntArray,
        n_unfulfilled: int,
        manifest: Optional[Dict[str, Any]] = None,
    ) -> "SimulationResult":
        delays = np.asarray(self.delays, dtype=float)
        # Close open crash intervals at the horizon.
        for started in self._offline_since.values():
            self.total_downtime += self.duration - started
        self._offline_since = {}
        return SimulationResult(
            delays=delays,
            duration=self.duration,
            total_gain=self.total_gain,
            n_generated=self.n_generated,
            n_fulfilled=self.n_fulfilled,
            n_immediate=self.n_immediate,
            n_skipped_self=self.n_skipped_self,
            n_expired=self.n_expired,
            n_unfulfilled=n_unfulfilled,
            mean_delay=float(delays.mean()) if len(delays) else float("nan"),
            median_delay=(
                float(np.median(delays)) if len(delays) else float("nan")
            ),
            p95_delay=(
                float(np.percentile(delays, 95)) if len(delays) else float("nan")
            ),
            window_length=self.window_length,
            window_gains=np.asarray(self.window_gains, dtype=float),
            window_fulfillments=np.asarray(
                self.window_fulfillments, dtype=np.int64
            ),
            snapshot_times=np.asarray(self.snapshot_times),
            snapshot_counts=(
                self._counts_buf[: self._n_snapshots].copy()
                if self._n_snapshots
                else np.zeros((0, self.n_items), dtype=np.int64)
            ),
            snapshot_mandates=(
                np.asarray(self.snapshot_mandates)
                if self.snapshot_mandates
                else None
            ),
            snapshot_tracked=(
                self._tracked_buf[: self._n_snapshots].copy()
                if self._tracked_buf is not None and self._n_snapshots
                else None
            ),
            final_counts=final_counts.copy(),
            n_crashes=self.n_crashes,
            n_recoveries=self.n_recoveries,
            n_replicas_lost=self.n_replicas_lost,
            n_mandates_lost=self.n_mandates_lost,
            n_requests_lost=self.n_requests_lost,
            n_requests_offline=self.n_requests_offline,
            n_contacts_blocked=self.n_contacts_blocked,
            n_contacts_dropped=self.n_contacts_dropped,
            total_downtime=self.total_downtime,
            fault_times=np.asarray(self.fault_times, dtype=float),
            recovery_times=np.asarray(self.recovery_times, dtype=float),
            manifest=manifest,
        )


@dataclass(frozen=True)
class SimulationResult:
    """Everything measured in one simulation run.

    ``gain_rate`` (total gain per unit time) is the simulated counterpart
    of the social welfare ``U(x)`` and the quantity the paper's
    normalized-loss comparisons are computed from.
    """

    duration: float
    total_gain: float
    n_generated: int
    n_fulfilled: int
    n_immediate: int
    n_skipped_self: int
    n_expired: int
    n_unfulfilled: int
    #: Every fulfillment's delay (immediate self-fulfillments included as
    #: zeros), in event order — the raw material for feedback studies.
    delays: FloatArray
    mean_delay: float
    median_delay: float
    p95_delay: float
    window_length: float
    window_gains: FloatArray
    window_fulfillments: IntArray
    snapshot_times: FloatArray
    snapshot_counts: IntArray
    snapshot_mandates: Optional[IntArray]
    snapshot_tracked: Optional[IntArray]
    final_counts: IntArray
    # Fault-injection measurements (zero / empty on fault-free runs).
    n_crashes: int = 0
    n_recoveries: int = 0
    #: Replicas destroyed by cache wipes and replica-loss events.
    n_replicas_lost: int = 0
    #: QCR mandates discarded on crashes.
    n_mandates_lost: int = 0
    #: Outstanding requests dropped when their node crashed.
    n_requests_lost: int = 0
    #: Requests that would have arrived at an offline node (not generated).
    n_requests_offline: int = 0
    #: Contacts skipped because an endpoint was offline.
    n_contacts_blocked: int = 0
    #: Contacts lost to the probabilistic drop process.
    n_contacts_dropped: int = 0
    #: Total offline node-time (summed over nodes), capped at the horizon.
    total_downtime: float = 0.0
    #: Distinct instants at which faults fired.
    fault_times: FloatArray = field(default_factory=lambda: np.zeros(0))
    #: Per loss episode: time until the global replica count re-attained
    #: its pre-loss level (measured at snapshot resolution); episodes
    #: never recovered within the horizon are absent.
    recovery_times: FloatArray = field(default_factory=lambda: np.zeros(0))
    #: Run provenance (:class:`repro.obs.manifest.RunManifest` as a plain
    #: dict), populated when the run was traced or manifests requested.
    #: Carries host timings, so result-equality checks must ignore it.
    manifest: Optional[Dict[str, Any]] = None

    @property
    def gain_rate(self) -> float:
        """Observed utility per unit time (the welfare estimate)."""
        return self.total_gain / self.duration

    @property
    def fulfillment_ratio(self) -> float:
        """Fraction of generated requests fulfilled before the horizon."""
        if self.n_generated == 0:
            return float("nan")
        return self.n_fulfilled / self.n_generated

    def summary(self) -> Dict[str, float]:
        """A compact dictionary of headline metrics."""
        return {
            "gain_rate": self.gain_rate,
            "total_gain": self.total_gain,
            "fulfillment_ratio": self.fulfillment_ratio,
            "mean_delay": self.mean_delay,
            "median_delay": self.median_delay,
            "p95_delay": self.p95_delay,
            "n_generated": float(self.n_generated),
            "n_unfulfilled": float(self.n_unfulfilled),
        }

    def robustness_summary(self) -> Dict[str, float]:
        """Headline fault/recovery metrics (all zero on fault-free runs)."""
        recovered = self.recovery_times
        return {
            "n_crashes": float(self.n_crashes),
            "n_recoveries": float(self.n_recoveries),
            "n_replicas_lost": float(self.n_replicas_lost),
            "n_mandates_lost": float(self.n_mandates_lost),
            "n_requests_lost": float(self.n_requests_lost),
            "n_contacts_blocked": float(self.n_contacts_blocked),
            "n_contacts_dropped": float(self.n_contacts_dropped),
            "total_downtime": self.total_downtime,
            "n_loss_episodes_recovered": float(len(recovered)),
            "median_recovery_time": (
                float(np.median(recovered)) if len(recovered) else float("nan")
            ),
        }
