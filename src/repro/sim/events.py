"""Trial-scoped event-stream construction.

The merged fault/request/contact stream consumed by the engine's hot
loops is a pure function of ``(trace, requests, faults, config)`` — it
does not depend on the protocol under test.  A sweep that compares P
protocols over the same realized trial therefore pays P identical
lexsort merges when each :class:`~repro.sim.engine.Simulation` builds
its own stream.  This module hoists the construction into free
functions plus a reusable :class:`EventStream` value so the sweep
runner can build the stream once per trial and hand the same read-only
arrays to every protocol via ``Simulation(prebuilt_events=...)``.

Nothing about the stream's *content* changes: the builder here is the
exact code the engine ran inline, and the engine validates on receipt
that a prebuilt stream belongs to the run's own trace, requests,
faults, and config before trusting it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
import numpy.typing as npt

from ..contacts import ContactTrace
from ..demand import RequestSchedule
from ..errors import ConfigurationError
from ..faults import FaultEvent, FaultSchedule
from ..types import FloatArray, IntArray
from .config import SimulationConfig

__all__ = [
    "EVENT_CONTACT",
    "EVENT_FAULT",
    "EVENT_REQUEST",
    "Chunk",
    "EventStream",
    "StreamSideState",
    "build_event_stream",
    "compute_plain_payloads",
    "cut_chunks",
    "stream_side_state",
]

#: Kind codes of the pre-merged event stream.  The numeric order *is*
#: the documented same-time tie rule: faults apply first (a node that
#: crashes at t is already offline for a contact at t), then requests,
#: then contacts.
EVENT_FAULT = 0
EVENT_REQUEST = 1
EVENT_CONTACT = 2

#: One pre-cut run of the merged stream, as consumed by the hot loops:
#: ``(kinds, times, arg_a, arg_b, payload_x, payload_y, request_positions,
#: snapshot)``.  The payload columns and request-position index exist only
#: in plain (untraced, fault-free) mode; *snapshot*, when not ``None``, is
#: the instant to record after the chunk's events.
Chunk = Tuple[
    IntArray,
    FloatArray,
    IntArray,
    IntArray,
    Optional[IntArray],
    Optional[IntArray],
    Optional[List[int]],
    Optional[float],
]


def memmap_backed(array: np.ndarray) -> bool:
    """True when *array* is (a view of) a memory-mapped file."""
    seen: object = array
    while isinstance(seen, np.ndarray):
        if isinstance(seen, np.memmap):
            return True
        seen = seen.base
    return False


def snapshot_instants(
    record_interval: Optional[float], horizon: float
) -> List[float]:
    """Snapshot instants, by the same repeated float accumulation the
    per-event loop used (not ``np.arange``), so the recorded instants
    are bit-identical; ``side='left'`` in :func:`cut_chunks` puts a
    snapshot at time s before any event at exactly s, matching the old
    ``t >= s`` rule."""
    snap_times: List[float] = []
    if record_interval is not None:
        s = 0.0
        while s <= horizon:
            snap_times.append(s)
            s += record_interval
    return snap_times


@dataclass(frozen=True)
class StreamSideState:
    """The merge's side arrays, shared by eager and streamed modes.

    Everything here is derived from ``(trace, requests, faults,
    config)`` before any event is merged: the horizon-filtered fault
    list, contiguous request columns, the server/requester masks the
    payload pass consumes, and the snapshot instants the stream is cut
    at.
    """

    fault_events: List[FaultEvent]
    fault_times: FloatArray
    req_times: FloatArray
    req_items: IntArray
    req_nodes: IntArray
    is_server: npt.NDArray[np.bool_]
    requester: npt.NDArray[np.bool_]
    all_servers: bool
    snap_times: List[float]


def stream_side_state(
    trace: ContactTrace,
    requests: RequestSchedule,
    config: SimulationConfig,
    faults: Optional[FaultSchedule] = None,
) -> StreamSideState:
    horizon = trace.duration
    n_nodes = trace.n_nodes
    fault_events: List[FaultEvent] = (
        [e for e in faults.events if e.time <= horizon]
        if faults is not None
        else []
    )
    fault_times: FloatArray = np.asarray(
        [e.time for e in fault_events], dtype=np.float64
    )
    # ascontiguousarray passes memory-mapped columns through
    # untouched (no copy) when the dtype already matches, so the
    # streamed merge reads request/fault columns lazily too.
    req_times: FloatArray = np.ascontiguousarray(
        requests.times, dtype=np.float64
    )
    req_items: IntArray = np.ascontiguousarray(requests.items, dtype=np.int64)
    req_nodes: IntArray = np.ascontiguousarray(requests.nodes, dtype=np.int64)
    is_server = np.zeros(n_nodes, dtype=bool)
    server_ids = config.server_ids(n_nodes)
    if len(server_ids):
        is_server[np.asarray(server_ids, dtype=np.int64)] = True
    # Nodes that ever issue a request.  Outstanding requests — the
    # only consumers of precomputed meeting counts — can exist
    # nowhere else, so payload slots are computed for these nodes
    # only (see ``compute_plain_payloads``).
    requester = np.zeros(n_nodes, dtype=bool)
    requester[req_nodes] = True
    return StreamSideState(
        fault_events=fault_events,
        fault_times=fault_times,
        req_times=req_times,
        req_items=req_items,
        req_nodes=req_nodes,
        is_server=is_server,
        requester=requester,
        all_servers=bool(is_server.all()),
        snap_times=snapshot_instants(config.record_interval, horizon),
    )


def compute_plain_payloads(
    kinds: IntArray,
    arg_a: IntArray,
    arg_b: IntArray,
    meet_base: IntArray,
    *,
    is_server: npt.NDArray[np.bool_],
    requester: npt.NDArray[np.bool_],
) -> Tuple[IntArray, IntArray]:
    """Widened payload columns for one sorted event block.

    The plain (untraced, fault-free) loop consumes precomputed
    query-counter state: a request's final query counter is the
    number of direction slots in which its node met a server
    between creation and fulfillment — in a fault-free run that is
    a pure function of the contact trace, so per-event payloads
    replace all per-request counter bookkeeping.  Contacts carry
    each endpoint's inclusive server-meeting count (``-1`` when
    the peer is not a server, i.e. the direction is a no-op),
    requests carry the node's count at creation, and the counter
    at fulfillment is the difference (see ``_fulfill_hits``).
    With faults, blocked and dropped contacts must not count, so
    the fault loop maintains the same counts dynamically instead.

    *meet_base* holds each node's running meeting counter entering the
    block and is advanced in place for the following block — the
    streamed pipeline's carry (all zeros and discarded in eager mode).

    Grouping by node uses no comparison sort: the two direction-slot
    lists are merged positionally with two ``searchsorted`` calls
    (each list is already in stream order), and a stable — for int64
    keys, radix — ``argsort`` on the node ids alone then groups slots
    by node while preserving stream order within each node.  That is
    order-identical to the packed ``(node << shift) | slot`` key sort
    it replaces: an a-slot precedes the same event's b-slot in both.
    """
    total = len(kinds)
    # Meeting counts are only ever read for a node with outstanding
    # requests (every ``mx``/``my`` read in the run loops sits
    # behind an ``out``/``out_a``/``out_b`` guard), and outstanding
    # requests can only exist on nodes that appear in the request
    # schedule.  Restricting the counted slots to those nodes keeps
    # every consumed value exact while shrinking the grouping pass
    # from O(contacts) to O(contacts involving requesters) — at
    # million-node scale that is the difference between the payload
    # pass dominating the run and it vanishing.  (In the
    # non-all-server candidate filter the ``served`` mask weakens
    # accordingly, which only drops contacts that are provable
    # no-ops: a non-requester endpoint can never fulfill.)
    contact_mask = kinds == EVENT_CONTACT
    count_a_valid = contact_mask & is_server[arg_b]
    count_a_valid &= requester[arg_a]
    count_b_valid = contact_mask & is_server[arg_a]
    count_b_valid &= requester[arg_b]
    idx_a = np.flatnonzero(count_a_valid)
    idx_b = np.flatnonzero(count_b_valid)
    n_a = len(idx_a)
    n_b = len(idx_b)
    n_inc = n_a + n_b
    payload_x = np.full(total, -1, dtype=np.int64)
    payload_y = np.full(total, -1, dtype=np.int64)
    if n_inc:
        # Positional merge of the two stream-ordered slot lists.  The
        # merged order is by (event, direction) with a before b, so an
        # a-slot at event e lands after every b-slot at an earlier
        # event (side='left') and a b-slot lands after every a-slot at
        # its own event or earlier (side='right').
        rank_a = np.arange(n_a, dtype=np.int64) + np.searchsorted(
            idx_b, idx_a, side="left"
        )
        rank_b = np.arange(n_b, dtype=np.int64) + np.searchsorted(
            idx_a, idx_b, side="right"
        )
        seq_nodes = np.empty(n_inc, dtype=np.int64)
        seq_idx = np.empty(n_inc, dtype=np.int64)
        seq_b_side = np.empty(n_inc, dtype=bool)
        seq_nodes[rank_a] = arg_a[idx_a]
        seq_idx[rank_a] = idx_a
        seq_b_side[rank_a] = False
        seq_nodes[rank_b] = arg_b[idx_b]
        seq_idx[rank_b] = idx_b
        seq_b_side[rank_b] = True
        order = np.argsort(seq_nodes, kind="stable")
        g_nodes = seq_nodes[order]
        g_idx = seq_idx[order]
        b_side = seq_b_side[order]
        new_group = np.empty(n_inc, dtype=bool)
        new_group[0] = True
        np.not_equal(g_nodes[1:], g_nodes[:-1], out=new_group[1:])
        starts = np.flatnonzero(new_group)
        sizes = np.diff(np.append(starts, n_inc))
        # 1-based rank within each node's increment run plus the
        # carried base: the inclusive meeting count at that slot.
        counts_g = (
            np.arange(n_inc, dtype=np.int64)
            - np.repeat(starts, sizes)
            + 1
            + meet_base[g_nodes]
        )
        payload_x[g_idx[~b_side]] = counts_g[~b_side]
        payload_y[g_idx[b_side]] = counts_g[b_side]
    else:
        g_nodes = np.zeros(0, dtype=np.int64)
        g_idx = np.zeros(0, dtype=np.int64)
        starts = np.zeros(0, dtype=np.int64)
        sizes = np.zeros(0, dtype=np.int64)
    # Request births: the node's meeting count just before the
    # request's position in the stream.
    request_mask = kinds == EVENT_REQUEST
    if request_mask.any():
        req_positions = np.flatnonzero(request_mask)
        req_nodes = arg_b[req_positions]
        births = meet_base[req_nodes]
        if n_inc:
            # Group the requests by node as well, then rank each
            # run against its node's increment segment with one
            # searchsorted per node — no per-node dict and no
            # O(requests) mask per node, which dominated
            # million-node streamed blocks.
            req_order = np.lexsort(  # repro-lint: ignore[RPL004]
                (req_positions, req_nodes)
            )
            rn = req_nodes[req_order]
            rp = req_positions[req_order]
            run_starts = np.flatnonzero(
                np.concatenate(([True], rn[1:] != rn[:-1]))
            )
            run_ends = np.append(run_starts[1:], len(rn))
            group_heads = g_nodes[starts]
            group_idx = np.searchsorted(group_heads, rn[run_starts])
            for head, lo_r, hi_r in zip(group_idx, run_starts, run_ends):
                if (
                    head >= len(group_heads)
                    or group_heads[head] != rn[lo_r]
                ):
                    continue
                lo = starts[head]
                hi = lo + sizes[head]
                births[req_order[lo_r:hi_r]] += np.searchsorted(
                    g_idx[lo:hi], rp[lo_r:hi_r], side="left"
                )
        payload_x[req_positions] = births
    if n_inc:
        # Advance the carry.  ``g_nodes[starts]`` lists each node at
        # most once, so the fancy-index add never collapses writes.
        meet_base[g_nodes[starts]] += sizes
    return payload_x, payload_y


def _chunk_tuple(
    kinds: IntArray,
    times: FloatArray,
    arg_a: IntArray,
    arg_b: IntArray,
    payload_x: Optional[IntArray],
    payload_y: Optional[IntArray],
    lo: int,
    hi: int,
    snap: Optional[float],
    payload_mode: bool,
) -> Chunk:
    kb = kinds[lo:hi]
    req_pos: Optional[List[int]] = None
    if payload_mode:
        req_pos = np.flatnonzero(kb == EVENT_REQUEST).tolist()
    return (
        kb,
        times[lo:hi],
        arg_a[lo:hi],
        arg_b[lo:hi],
        payload_x[lo:hi] if payload_x is not None else None,
        payload_y[lo:hi] if payload_y is not None else None,
        req_pos,
        snap,
    )


def cut_chunks(
    kinds: IntArray,
    times: FloatArray,
    arg_a: IntArray,
    arg_b: IntArray,
    payload_x: Optional[IntArray],
    payload_y: Optional[IntArray],
    *,
    snap_times: List[float],
    snap_idx: int,
    last: bool,
    payload_mode: bool,
) -> Tuple[List[Chunk], int]:
    """Cut one sorted event block at pending snapshot instants.

    Returns the chunks plus the advanced snapshot cursor.  Each
    chunk is the run of events strictly before one snapshot fires,
    so the hot loops carry no per-event snapshot comparison.  A
    snapshot past the block's end is deferred to a later block —
    unless *last*, in which case every remaining snapshot fires
    (possibly on empty chunks) so eager and streamed runs record
    the same instants.
    """
    n = len(kinds)
    chunks: List[Chunk] = []
    start = 0
    while snap_idx < len(snap_times):
        snap = snap_times[snap_idx]
        pos = int(np.searchsorted(times, snap, side="left"))
        if pos >= n and not last:
            break
        pos = min(pos, n)
        chunks.append(
            _chunk_tuple(
                kinds, times, arg_a, arg_b, payload_x, payload_y,
                start, pos, snap, payload_mode,
            )
        )
        start = pos
        snap_idx += 1
    if start < n:
        chunks.append(
            _chunk_tuple(
                kinds, times, arg_a, arg_b, payload_x, payload_y,
                start, n, None, payload_mode,
            )
        )
    return chunks, snap_idx


@dataclass(frozen=True)
class EventStream:
    """One trial's merged event stream, reusable across protocols.

    Produced by :func:`build_event_stream` and accepted by
    ``Simulation(prebuilt_events=...)``.  The identity fields
    (*trace*, *requests*, *faults*, *config_fingerprint*) are what the
    engine validates on receipt: a prebuilt stream is only trusted for
    a run over the very same objects and an equivalent config.  All
    array fields are shared read-only — neither the builder nor the
    engine ever mutates them after construction.
    """

    trace: ContactTrace
    requests: RequestSchedule
    faults: Optional[FaultSchedule]
    config_fingerprint: str
    #: Whether the plain-mode payload columns were materialized.  A
    #: payload-bearing stream also serves traced runs (the traced loop
    #: ignores payloads); a fault schedule forbids payloads entirely.
    payload_mode: bool
    n_events: int
    fault_events: List[FaultEvent]
    fault_times: FloatArray
    req_times: FloatArray
    req_items: IntArray
    req_nodes: IntArray
    is_server: npt.NDArray[np.bool_]
    requester: npt.NDArray[np.bool_]
    all_servers: bool
    snap_times: List[float]
    event_times: FloatArray
    event_kinds: IntArray
    event_a: IntArray
    event_b: IntArray
    chunks: List[Chunk]

    @property
    def nbytes(self) -> int:
        """Approximate heap footprint of the merged columns."""
        return int(
            self.event_times.nbytes
            + self.event_kinds.nbytes
            + self.event_a.nbytes
            + self.event_b.nbytes
        )


def build_event_stream(
    trace: ContactTrace,
    requests: RequestSchedule,
    config: SimulationConfig,
    faults: Optional[FaultSchedule] = None,
    *,
    payloads: Optional[bool] = None,
) -> EventStream:
    """Merge contacts, requests, and faults into one sorted stream.

    Each stream arrives individually time-sorted; a single stable
    ``np.lexsort`` on ``(time, kind)`` interleaves them while
    preserving the fault -> request -> contact same-time tie rule
    (kind codes are ordered that way) and the original order within
    each stream.  The merged stream stays columnar — flat NumPy
    arrays the hot loops index directly.

    This is the *eager* builder: the whole stream is materialized and
    pre-cut at snapshot instants, exactly as ``Simulation`` does
    inline for an in-memory trace.  Streamed mode (memory-mapped
    traces, explicit ``chunk_events``) has no prebuilt form — the
    engine merges block by block at run time and a prebuilt stream is
    rejected there.

    *payloads* controls the plain-mode payload columns; the default
    (``faults is None``) materializes them whenever valid.  Payloads
    under a fault schedule are meaningless (blocked and dropped
    contacts must not count) and requesting them raises.
    """
    if payloads is None:
        payloads = faults is None
    elif payloads and faults is not None:
        raise ConfigurationError(
            "plain-mode payloads are invalid under a fault schedule"
        )
    if requests.duration > trace.duration + 1e-9:
        raise ConfigurationError(
            "request schedule extends past the contact trace"
        )
    n_nodes = trace.n_nodes
    side = stream_side_state(trace, requests, config, faults)
    n_f = len(side.fault_events)
    n_q, n_c = len(requests.times), len(trace.times)
    total = n_f + n_q + n_c
    times = np.empty(total, dtype=np.float64)
    times[:n_f] = side.fault_times
    times[n_f : n_f + n_q] = requests.times
    times[n_f + n_q :] = trace.times
    kinds = np.empty(total, dtype=np.int64)
    kinds[:n_f] = EVENT_FAULT
    kinds[n_f : n_f + n_q] = EVENT_REQUEST
    kinds[n_f + n_q :] = EVENT_CONTACT
    # First/second payload slot per kind: fault index / unused,
    # request item / requesting node, contact endpoints a / b.
    arg_a = np.zeros(total, dtype=np.int64)
    arg_a[:n_f] = np.arange(n_f)
    arg_a[n_f : n_f + n_q] = requests.items
    arg_a[n_f + n_q :] = trace.node_a
    arg_b = np.zeros(total, dtype=np.int64)
    arg_b[n_f : n_f + n_q] = requests.nodes
    arg_b[n_f + n_q :] = trace.node_b
    order = np.lexsort((kinds, times))
    sorted_times = times[order]
    sorted_kinds = kinds[order]
    sorted_a = arg_a[order]
    sorted_b = arg_b[order]
    payload_x: Optional[IntArray]
    payload_y: Optional[IntArray]
    if payloads:
        payload_x, payload_y = compute_plain_payloads(
            sorted_kinds,
            sorted_a,
            sorted_b,
            np.zeros(n_nodes, dtype=np.int64),
            is_server=side.is_server,
            requester=side.requester,
        )
    else:
        payload_x = payload_y = None
    chunks, _ = cut_chunks(
        sorted_kinds,
        sorted_times,
        sorted_a,
        sorted_b,
        payload_x,
        payload_y,
        snap_times=side.snap_times,
        snap_idx=0,
        last=True,
        payload_mode=payloads,
    )
    return EventStream(
        trace=trace,
        requests=requests,
        faults=faults,
        config_fingerprint=config.fingerprint(),
        payload_mode=payloads,
        n_events=total,
        fault_events=side.fault_events,
        fault_times=side.fault_times,
        req_times=side.req_times,
        req_items=side.req_items,
        req_nodes=side.req_nodes,
        is_server=side.is_server,
        requester=side.requester,
        all_servers=side.all_servers,
        snap_times=side.snap_times,
        event_times=sorted_times,
        event_kinds=sorted_kinds,
        event_a=sorted_a,
        event_b=sorted_b,
        chunks=chunks,
    )
