"""Simulation configuration."""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..utility import DelayUtility

__all__ = ["SimulationConfig"]


@dataclass(frozen=True)
class SimulationConfig:
    """Static parameters of a simulation run.

    Attributes
    ----------
    n_items:
        Catalog size ``|I|``.
    rho:
        Cache slots per server node.
    utility:
        The delay-utility ``h`` used both to credit fulfillment gains and
        (for QCR) to derive the reaction function.
    servers:
        Node ids acting as servers; ``None`` means every node (pure P2P).
    clients:
        Node ids acting as clients; ``None`` means every node.
    self_request_policy:
        What happens when a client requests an item its own cache already
        holds: ``"immediate"`` fulfills instantly with gain ``h(0+)``
        (Lemma 1's ``1 - x_{i,n}`` term; requires finite ``h(0+)``),
        ``"skip"`` suppresses the request (the user already has the
        content).  Dedicated-node set-ups never hit this path.
    unfulfilled_policy:
        Gain credited to requests still outstanding when the simulation
        ends: ``"truncate"`` credits ``h(T - t_request)`` — the cost
        accrued so far, which matters for negative (waiting-cost)
        utilities — while ``"ignore"`` credits nothing.
    request_timeout:
        Age after which an outstanding request is abandoned (the user
        stops waiting).  Abandoned requests are credited the utility's
        ``gain_never`` when finite (0 for step/exponential) and removed;
        ``None`` keeps requests outstanding forever.  Only meaningful for
        utilities bounded below — under unbounded waiting costs a user
        never stops losing by waiting.
    record_interval:
        Cadence of allocation snapshots (and mandate snapshots for QCR);
        ``None`` disables snapshots.
    window_length:
        Length of the observed-utility aggregation windows.
    track_items:
        Item ids whose replica counts are recorded at every snapshot
        (e.g. the five most requested items of Figure 3).
    """

    n_items: int
    rho: int
    utility: DelayUtility
    servers: Optional[Tuple[int, ...]] = None
    clients: Optional[Tuple[int, ...]] = None
    self_request_policy: str = "immediate"
    unfulfilled_policy: str = "truncate"
    request_timeout: Optional[float] = None
    record_interval: Optional[float] = None
    window_length: float = 60.0
    track_items: Tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.n_items <= 0:
            raise ConfigurationError(f"n_items must be > 0, got {self.n_items}")
        if self.rho <= 0:
            raise ConfigurationError(f"rho must be > 0, got {self.rho}")
        if self.self_request_policy not in ("immediate", "skip"):
            raise ConfigurationError(
                f"unknown self_request_policy {self.self_request_policy!r}"
            )
        if self.unfulfilled_policy not in ("truncate", "ignore"):
            raise ConfigurationError(
                f"unknown unfulfilled_policy {self.unfulfilled_policy!r}"
            )
        # record_interval <= 0 would spin Simulation.run's snapshot loop
        # (``next_snapshot += record_interval`` never advances) and NaN
        # compares False against everything, so both are rejected here
        # rather than hanging or silently disabling snapshots.
        if self.record_interval is not None and not (
            math.isfinite(self.record_interval) and self.record_interval > 0
        ):
            raise ConfigurationError(
                f"record_interval must be finite and > 0 when set, "
                f"got {self.record_interval}"
            )
        if self.request_timeout is not None and not (
            math.isfinite(self.request_timeout) and self.request_timeout > 0
        ):
            raise ConfigurationError(
                f"request_timeout must be finite and > 0 when set, "
                f"got {self.request_timeout}"
            )
        if not (math.isfinite(self.window_length) and self.window_length > 0):
            raise ConfigurationError(
                f"window_length must be finite and > 0, got {self.window_length}"
            )
        for collection_name in ("servers", "clients"):
            value = getattr(self, collection_name)
            if value is not None:
                object.__setattr__(
                    self, collection_name, tuple(int(v) for v in value)
                )
        if any(i < 0 or i >= self.n_items for i in self.track_items):
            raise ConfigurationError("track_items out of range")

    def canonical_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict capturing every semantic parameter.

        The utility is represented by its :attr:`DelayUtility.name`,
        which embeds its parameters (e.g. ``step(tau=10)``), so two
        configs canonicalize equal iff they run identical simulations.
        """
        return {
            "n_items": self.n_items,
            "rho": self.rho,
            "utility": self.utility.name,
            "servers": list(self.servers) if self.servers is not None else None,
            "clients": list(self.clients) if self.clients is not None else None,
            "self_request_policy": self.self_request_policy,
            "unfulfilled_policy": self.unfulfilled_policy,
            "request_timeout": self.request_timeout,
            "record_interval": self.record_interval,
            "window_length": self.window_length,
            "track_items": list(self.track_items),
        }

    def fingerprint(self) -> str:
        """A short stable hash of :meth:`canonical_dict` for provenance.

        Used by :class:`repro.obs.manifest.RunManifest` to tie results
        and trace files back to the exact configuration that produced
        them.
        """
        payload = json.dumps(
            self.canonical_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def server_ids(self, n_nodes: int) -> np.ndarray:
        """Resolve the server id list for a network of *n_nodes* nodes."""
        if self.servers is None:
            return np.arange(n_nodes, dtype=np.int64)
        ids = np.asarray(sorted(set(self.servers)), dtype=np.int64)
        if len(ids) == 0 or ids[0] < 0 or ids[-1] >= n_nodes:
            raise ConfigurationError("server ids out of range")
        return ids

    def client_ids(self, n_nodes: int) -> np.ndarray:
        """Resolve the client id list for a network of *n_nodes* nodes."""
        if self.clients is None:
            return np.arange(n_nodes, dtype=np.int64)
        ids = np.asarray(sorted(set(self.clients)), dtype=np.int64)
        if len(ids) == 0 or ids[0] < 0 or ids[-1] >= n_nodes:
            raise ConfigurationError("client ids out of range")
        return ids
