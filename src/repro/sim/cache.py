"""Per-node content cache with random replacement and a sticky slot.

Matches the paper's Section 6.1 semantics: every server has ``rho``
equal-size slots; a new replica overwrites a uniformly random slot; each
item may have one *sticky replica* somewhere in the network that is never
evicted (so no item can be lost to stochastic extinction).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Set

import numpy as np

from ..errors import SimulationError

__all__ = ["Cache"]


class Cache:
    """A fixed-capacity item cache with random replacement.

    Not thread-safe; owned by a single simulation.
    """

    __slots__ = ("_capacity", "_items", "_evictable", "_sticky")

    def __init__(self, capacity: int, sticky: Optional[int] = None) -> None:
        if capacity <= 0:
            raise SimulationError(f"cache capacity must be > 0, got {capacity}")
        self._capacity = capacity
        self._items: Set[int] = set()
        self._evictable: List[int] = []
        self._sticky: Optional[int] = None
        if sticky is not None:
            self.pin(sticky)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def sticky(self) -> Optional[int]:
        """The pinned item, if any."""
        return self._sticky

    def __contains__(self, item: int) -> bool:
        return item in self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[int]:
        return iter(self._items)

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self._capacity

    def items(self) -> Set[int]:
        """A snapshot copy of the cached item ids."""
        return set(self._items)

    def live_view(self) -> Set[int]:
        """The live backing set of cached item ids (do not mutate).

        Every mutation path updates the set in place, so its identity is
        stable for the cache's lifetime — the engine's flat cache table
        aliases it to test membership without going through the cache.
        """
        return self._items

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def pin(self, item: int) -> None:
        """Make *item* this cache's sticky (never-evicted) entry.

        The item is inserted if absent; a cache holds at most one sticky
        item (re-pinning replaces the protection, not the content).
        """
        if self._sticky is not None and self._sticky != item:
            # Demote the old sticky entry to evictable.
            if self._sticky in self._items:
                self._evictable.append(self._sticky)
        if item not in self._items:
            if self.is_full:
                raise SimulationError(
                    "cannot pin into a full cache; seed sticky items first"
                )
            self._items.add(item)
        else:
            self._evictable.remove(item)
        self._sticky = item

    def unpin(self) -> Optional[int]:
        """Release the sticky protection, demoting the entry to evictable.

        Returns the formerly sticky item, or ``None`` when nothing was
        pinned.  Used by fault injection when a crash is allowed to
        destroy sticky replicas (``sticky_survives=False``).
        """
        item = self._sticky
        if item is None:
            return None
        if item in self._items:
            self._evictable.append(item)
        self._sticky = None
        return item

    def add(self, item: int) -> None:
        """Insert *item* into a non-full cache (seeding only)."""
        if item in self._items:
            return
        if self.is_full:
            raise SimulationError("cache full; use insert() with an RNG")
        self._items.add(item)
        self._evictable.append(item)

    def insert(self, item: int, rng: np.random.Generator) -> Optional[int]:
        """Insert *item*, evicting a uniform random non-sticky entry.

        Returns the evicted item id, or ``None`` if no eviction happened
        (item already present, cache not full, or nothing evictable).
        When the cache is full and every slot is sticky, the insertion is
        refused and the cache is unchanged (``item not in cache`` after).
        """
        if item in self._items:
            return None
        if not self.is_full:
            self._items.add(item)
            self._evictable.append(item)
            return None
        if not self._evictable:
            return None  # every slot pinned; insertion refused
        index = int(rng.integers(len(self._evictable)))
        victim = self._evictable[index]
        self._evictable[index] = item
        self._items.remove(victim)
        self._items.add(item)
        return victim

    def discard(self, item: int) -> bool:
        """Remove *item* if present and not sticky; return whether removed.

        Used for failure injection and test set-up; the replication
        protocols themselves never remove content explicitly.
        """
        if item not in self._items or item == self._sticky:
            return False
        self._items.remove(item)
        self._evictable.remove(item)
        return True

    def fill_random(
        self, candidates: Iterable[int], rng: np.random.Generator
    ) -> List[int]:
        """Fill remaining slots with distinct items drawn from *candidates*.

        Returns the items added.  Used by initial seeding.
        """
        pool = [c for c in candidates if c not in self._items]
        added: List[int] = []
        free = self._capacity - len(self._items)
        if free <= 0 or not pool:
            return added
        chosen = rng.choice(len(pool), size=min(free, len(pool)), replace=False)
        for index in np.atleast_1d(chosen):
            item = pool[int(index)]
            self._items.add(item)
            self._evictable.append(item)
            added.append(item)
        return added
