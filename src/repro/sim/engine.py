"""The discrete-event simulator.

Replays a contact trace against a request schedule and a replication
protocol, implementing the semantics of the paper's Section 6.1:

* on every contact the two nodes exchange metadata; every outstanding
  request of either node that the other's cache can satisfy is fulfilled,
  crediting the delay-utility ``h(age)``;
* every outstanding request's query counter increments once per meeting
  with a server (the fulfilling meeting included);
* protocol hooks run after fulfillment (mandate creation for QCR) and at
  the end of the contact (mandate execution and routing);
* requests for items a node itself caches are fulfilled immediately with
  gain ``h(0+)`` (configurable, see
  :class:`~repro.sim.config.SimulationConfig`).

The engine never decides replication itself — static allocations simply do
nothing in the hooks — so every algorithm of Section 6 runs on identical
machinery and identical randomness.
"""

from __future__ import annotations

import math
from typing import AbstractSet, Dict, List, Optional, Tuple

import numpy as np

#: Kind codes of the pre-merged event stream.  The numeric order *is*
#: the documented same-time tie rule: faults apply first (a node that
#: crashes at t is already offline for a contact at t), then requests,
#: then contacts.
EVENT_FAULT = 0
EVENT_REQUEST = 1
EVENT_CONTACT = 2

#: Version of the engine's observable semantics, keyed into the
#: content-addressed run cache (:mod:`repro.simcache`).  Bump whenever a
#: change could alter simulation *results* — cached entries from older
#: versions then stop matching and are recomputed.  Pure speedups that
#: keep bit-identity (the contract enforced against ``sim/_reference``)
#: do not require a bump.
ENGINE_CODE_VERSION = "2026.08-array-core-1"

#: One pre-merged event: ``(kind, time, arg_a, arg_b)`` — the layout
#: consumed by the traced and fault-injected loops.  The plain fast loop
#: consumes a widened ``(kind, time, arg_a, arg_b, x, y)`` layout whose
#: trailing payloads carry precomputed server-meeting counts (see
#: ``_build_event_stream``).
_Event = Tuple[int, float, int, int]

from ..contacts import ContactTrace
from ..demand import RequestSchedule
from ..errors import ConfigurationError, SimulationError
from ..faults import FaultEvent, FaultSchedule
from ..obs import events as trace_events
from ..obs.manifest import RunManifest
from ..obs.timing import Stopwatch
from ..obs.tracer import Tracer
from ..protocols.base import ReplicationProtocol
from ..types import IntArray, SeedLike, as_rng
from .config import SimulationConfig
from .metrics import MetricsCollector, SimulationResult
from .node import NodeState, Request

__all__ = ["Simulation", "simulate"]


class Simulation:
    """One simulation run binding trace, demand, config, and protocol.

    *faults*, when given, is merged into the event loop as a third
    stream alongside contacts and requests (see :mod:`repro.faults`):
    offline nodes neither exchange content nor generate requests, cache
    wipes and replica losses go through :meth:`remove_copy` so replica
    accounting stays consistent, and all fault randomness comes from the
    schedule's own RNG — a run with ``faults=None`` is bit-identical to
    one before fault injection existed.
    """

    __slots__ = (
        "trace",
        "requests",
        "config",
        "protocol",
        "rng",
        "faults",
        "_fault_rng",
        "_drop_prob",
        "server_ids",
        "client_ids",
        "nodes",
        "server_position",
        "counts",
        "occupancy",
        "sticky_owner",
        "_initialized",
        "tracer",
        "_collect_manifest",
        "_seed_value",
        "_now",
        "metrics",
        "_utility",
        "_h0",
        "_h0_finite",
        "_timeout",
        "_skip_self",
        "_abandoned_gain",
        "_credit_abandoned",
        "_hook_free_contact",
        "_hook_free_fulfill",
        "_event_times",
        "_event_kinds",
        "_event_a",
        "_event_b",
        "_fault_events",
        "_chunks",
        "_outstanding_tbl",
        "_cache_tbl",
        "_is_server_tbl",
        "_mandates_tbl",
        "_contact_hook_idle",
    )

    def __init__(
        self,
        trace: ContactTrace,
        requests: RequestSchedule,
        config: SimulationConfig,
        protocol: ReplicationProtocol,
        seed: SeedLike = None,
        faults: Optional[FaultSchedule] = None,
        tracer: Optional[Tracer] = None,
        collect_manifest: bool = False,
    ) -> None:
        if requests.duration > trace.duration + 1e-9:
            raise ConfigurationError(
                "request schedule extends past the contact trace"
            )
        self.trace = trace
        self.requests = requests
        self.config = config
        self.protocol = protocol
        self.rng = as_rng(seed)
        self.faults = faults
        if faults is not None:
            for event in faults.events:
                if event.node is not None and event.node >= trace.n_nodes:
                    raise ConfigurationError(
                        f"fault event node {event.node} out of range "
                        f"for a {trace.n_nodes}-node trace"
                    )
                if event.item is not None and event.item >= config.n_items:
                    raise ConfigurationError(
                        f"fault event item {event.item} out of range "
                        f"for a {config.n_items}-item catalog"
                    )
            self._fault_rng = faults.runtime_rng()
            self._drop_prob = faults.drop_prob
        else:
            self._fault_rng = None
            self._drop_prob = 0.0

        n_nodes = trace.n_nodes
        self.server_ids = config.server_ids(n_nodes)
        self.client_ids = config.client_ids(n_nodes)
        server_set = set(int(m) for m in self.server_ids)
        client_set = set(int(n) for n in self.client_ids)
        if len(requests.nodes) and not set(
            int(n) for n in np.unique(requests.nodes)
        ) <= client_set:
            raise ConfigurationError(
                "request schedule contains non-client node ids"
            )

        self.nodes: List[NodeState] = [
            NodeState(
                node_id,
                is_server=node_id in server_set,
                is_client=node_id in client_set,
                capacity=config.rho,
            )
            for node_id in range(n_nodes)
        ]
        #: Server node id -> column position in allocation matrices.
        self.server_position = {
            int(node): pos for pos, node in enumerate(self.server_ids)
        }
        self.counts = np.zeros(config.n_items, dtype=np.int64)
        #: Boolean ``(n_nodes, n_items)`` cache-occupancy matrix — the
        #: array view of every server cache, kept consistent with the
        #: per-cache sets by :meth:`set_initial_allocation`,
        #: :meth:`insert_copy`, and :meth:`remove_copy` (all cache
        #: mutation funnels through those three).  ``counts`` is its
        #: column sum; batch analyses read it instead of walking caches.
        self.occupancy = np.zeros((n_nodes, config.n_items), dtype=bool)
        self.sticky_owner: Optional[IntArray] = None
        self._initialized = False
        # Tracing: an inactive tracer (NullSink) resolves to None, and
        # run() then selects the bare event handlers — the untraced hot
        # path is byte-identical to the pre-telemetry engine.  Traced
        # runs use the _traced_* duplicates, which interleave emission
        # with the same logic.  Emission sites outside the hot loop
        # (replication, faults, settlement) stay guarded inline.
        self.tracer: Optional[Tracer] = (
            tracer if tracer is not None and tracer.active else None
        )
        self._collect_manifest = collect_manifest or self.tracer is not None
        self._seed_value: Optional[int] = (
            int(seed) if isinstance(seed, (int, np.integer)) else None
        )
        #: Simulated time of the event being processed; maintained by the
        #: traced handler wrappers so replication events emitted from
        #: inside protocol hooks carry the right timestamp.
        self._now = 0.0
        if self.tracer is not None:
            self.tracer.emit(
                trace_events.RUN_START,
                0.0,
                n_nodes=n_nodes,
                n_items=config.n_items,
                duration=trace.duration,
                protocol=protocol.name,
            )
        self.metrics = MetricsCollector(
            duration=trace.duration,
            n_items=config.n_items,
            window_length=config.window_length,
            record_interval=config.record_interval,
            track_items=config.track_items,
        )
        protocol.initialize(self)
        if not self._initialized:
            raise SimulationError(
                f"protocol {protocol.name!r} did not set an initial allocation"
            )

        # Hot-path constants, resolved once per run instead of per event.
        utility = config.utility
        self._utility = utility
        self._h0 = utility.h0
        self._h0_finite = math.isfinite(utility.h0)
        self._timeout = config.request_timeout
        self._skip_self = config.self_request_policy == "skip"
        gain_never = utility.gain_never
        self._abandoned_gain = gain_never
        self._credit_abandoned = (
            math.isfinite(gain_never) and gain_never != 0.0
        )
        # Protocols that never override the contact/fulfill hooks (static
        # allocations, passive replication) let the engine skip the hook
        # dispatch — and, when neither endpoint has outstanding requests,
        # the whole exchange.
        cls = type(protocol)
        self._hook_free_contact = (
            cls.after_contact is ReplicationProtocol.after_contact
        )
        self._hook_free_fulfill = (
            cls.on_fulfill is ReplicationProtocol.on_fulfill
        )
        # Flat per-node state tables, indexed by node id.  All alias
        # live structures — NodeState.outstanding/mandates dicts and the
        # caches' backing sets (Cache.live_view() identity is stable) —
        # so the hot loops skip the NodeState attribute walk entirely
        # while every protocol-facing API still sees the same state.
        # Non-servers get one shared (immutable) empty set so membership
        # tests need no None branch.
        self._outstanding_tbl: List[Dict[int, List[Request]]] = [
            node.outstanding for node in self.nodes
        ]
        empty: AbstractSet[int] = frozenset()
        self._cache_tbl: List[AbstractSet[int]] = [
            node.cache.live_view() if node.cache is not None else empty
            for node in self.nodes
        ]
        self._is_server_tbl: List[bool] = [
            node.is_server for node in self.nodes
        ]
        self._mandates_tbl: List[Dict[int, int]] = [
            node.mandates for node in self.nodes
        ]
        # Protocols promising an idle after_contact() without mandates
        # (QCR family) let the engine skip the hook dispatch entirely on
        # mandate-free contacts — by far the common case.
        self._contact_hook_idle = bool(
            getattr(protocol, "contact_hook_idle_without_mandates", False)
        )
        self._build_event_stream()

    def _build_event_stream(self) -> None:
        """Merge contacts, requests, and faults into one sorted stream.

        Each stream arrives individually time-sorted; a single stable
        ``np.lexsort`` on ``(time, kind)`` interleaves them while
        preserving the fault -> request -> contact same-time tie rule
        (kind codes are ordered that way) and the original order within
        each stream.  Built once per simulation so ``run()`` does no
        per-call array conversion.
        """
        trace = self.trace
        requests = self.requests
        horizon = trace.duration
        fault_events: List[FaultEvent] = (
            [e for e in self.faults.events if e.time <= horizon]
            if self.faults is not None
            else []
        )
        n_f, n_q, n_c = len(fault_events), len(requests.times), len(trace.times)
        total = n_f + n_q + n_c
        times = np.empty(total, dtype=np.float64)
        times[:n_f] = [e.time for e in fault_events]
        times[n_f : n_f + n_q] = requests.times
        times[n_f + n_q :] = trace.times
        kinds = np.empty(total, dtype=np.int64)
        kinds[:n_f] = EVENT_FAULT
        kinds[n_f : n_f + n_q] = EVENT_REQUEST
        kinds[n_f + n_q :] = EVENT_CONTACT
        # First/second payload slot per kind: fault index / unused,
        # request item / requesting node, contact endpoints a / b.
        arg_a = np.zeros(total, dtype=np.int64)
        arg_a[:n_f] = np.arange(n_f)
        arg_a[n_f : n_f + n_q] = requests.items
        arg_a[n_f + n_q :] = trace.node_a
        arg_b = np.zeros(total, dtype=np.int64)
        arg_b[n_f : n_f + n_q] = requests.nodes
        arg_b[n_f + n_q :] = trace.node_b
        order = np.lexsort((kinds, times))
        sorted_times = times[order]
        sorted_kinds = kinds[order]
        sorted_a = arg_a[order]
        sorted_b = arg_b[order]
        self._event_times: List[float] = sorted_times.tolist()
        self._event_kinds: List[int] = sorted_kinds.tolist()
        self._event_a: List[int] = sorted_a.tolist()
        self._event_b: List[int] = sorted_b.tolist()
        self._fault_events = fault_events
        # The plain (untraced, fault-free) loop consumes a widened event
        # layout carrying precomputed query-counter state.  A request's
        # final query counter is the number of direction slots in which
        # its node met a server between creation and fulfillment — in a
        # fault-free run that is a pure function of the contact trace,
        # so per-event payloads replace all per-request counter
        # bookkeeping: contacts carry each endpoint's inclusive
        # server-meeting count (-1 when the peer is not a server, i.e.
        # the direction is a no-op), requests carry the node's count at
        # creation, and the counter at fulfillment is the difference.
        # With faults, blocked and dropped contacts must not count, so
        # the fault loop maintains the same counts dynamically instead.
        events: List[Tuple[int, ...]]
        if self.tracer is None and self.faults is None:
            is_server = np.zeros(len(self.nodes), dtype=bool)
            is_server[np.asarray(self.server_ids, dtype=np.int64)] = True
            contact_mask = sorted_kinds == EVENT_CONTACT
            count_a_valid = contact_mask & is_server[sorted_b]
            count_b_valid = contact_mask & is_server[sorted_a]
            event_idx = np.arange(total, dtype=np.int64)
            inc_nodes = np.concatenate(
                (sorted_a[count_a_valid], sorted_b[count_b_valid])
            )
            inc_idx = np.concatenate(
                (event_idx[count_a_valid], event_idx[count_b_valid])
            )
            # Not an event merge: groups the already time-ordered
            # increment slots by node to rank server meetings per node.
            grouped = np.lexsort((inc_idx, inc_nodes))  # repro-lint: ignore[RPL004]
            g_nodes = inc_nodes[grouped]
            g_idx = inc_idx[grouped]
            n_inc = len(g_nodes)
            if n_inc:
                new_group = np.empty(n_inc, dtype=bool)
                new_group[0] = True
                np.not_equal(g_nodes[1:], g_nodes[:-1], out=new_group[1:])
                starts = np.flatnonzero(new_group)
                sizes = np.diff(np.append(starts, n_inc))
                # 1-based rank within each node's increment run: the
                # inclusive meeting count at that direction slot.
                ranks = (
                    np.arange(n_inc, dtype=np.int64)
                    - np.repeat(starts, sizes)
                    + 1
                )
                counts_flat = np.empty(n_inc, dtype=np.int64)
                counts_flat[grouped] = ranks
            else:
                starts = np.zeros(0, dtype=np.int64)
                sizes = np.zeros(0, dtype=np.int64)
                counts_flat = np.zeros(0, dtype=np.int64)
            n_a_side = int(np.count_nonzero(count_a_valid))
            payload_x = np.full(total, -1, dtype=np.int64)
            payload_y = np.full(total, -1, dtype=np.int64)
            payload_x[count_a_valid] = counts_flat[:n_a_side]
            payload_y[count_b_valid] = counts_flat[n_a_side:]
            # Request births: the node's meeting count just before the
            # request's position in the stream.
            request_mask = sorted_kinds == EVENT_REQUEST
            if request_mask.any():
                group_of = {
                    int(node): (int(lo), int(lo + size))
                    for node, lo, size in zip(g_nodes[starts], starts, sizes)
                }
                req_positions = np.flatnonzero(request_mask)
                births = np.zeros(len(req_positions), dtype=np.int64)
                req_nodes = sorted_b[req_positions]
                for node in np.unique(req_nodes):
                    bounds_ = group_of.get(int(node))
                    if bounds_ is None:
                        continue
                    lo, hi = bounds_
                    sel = req_nodes == node
                    births[sel] = np.searchsorted(
                        g_idx[lo:hi], req_positions[sel], side="left"
                    )
                payload_x[req_positions] = births
            events = list(
                zip(
                    self._event_kinds,
                    self._event_times,
                    self._event_a,
                    self._event_b,
                    payload_x.tolist(),
                    payload_y.tolist(),
                )
            )
        else:
            events = list(
                zip(
                    self._event_kinds,
                    self._event_times,
                    self._event_a,
                    self._event_b,
                )
            )
        # Chunk the stream at the snapshot instants so the hot loops
        # carry no per-event snapshot comparison: each chunk is the run
        # of events strictly before one snapshot fires.  Snapshot times
        # are generated by the same repeated float accumulation the
        # per-event loop used (not np.arange), so the recorded instants
        # are bit-identical; ``side='left'`` puts a snapshot at time s
        # before any event at exactly s, matching the old ``t >= s``
        # rule.
        record_interval = self.config.record_interval
        chunks: List[Tuple[List[Tuple[int, ...]], Optional[float]]] = []
        if record_interval is not None:
            snap_times: List[float] = []
            s = 0.0
            while s <= horizon:
                snap_times.append(s)
                s += record_interval
            bounds = np.searchsorted(sorted_times, snap_times, side="left")
            start = 0
            for snap, bound in zip(snap_times, bounds):
                chunks.append((events[start : int(bound)], snap))
                start = int(bound)
            chunks.append((events[start:], None))
        else:
            chunks.append((events, None))
        self._chunks = chunks

    # ------------------------------------------------------------------
    # state manipulation (protocol-facing API)
    # ------------------------------------------------------------------
    @property
    def n_servers(self) -> int:
        return len(self.server_ids)

    def set_initial_allocation(
        self,
        allocation: IntArray,
        sticky_owner: Optional[IntArray] = None,
    ) -> None:
        """Load the initial caches from a binary allocation matrix.

        *allocation* has shape ``(n_items, n_servers)`` with columns in
        ``self.server_ids`` order; *sticky_owner*, when given, maps each
        item to the server node id holding its never-evicted replica (that
        server must hold the item in *allocation*).
        """
        if self._initialized:
            raise SimulationError("initial allocation already set")
        allocation = np.asarray(allocation)
        expected = (self.config.n_items, self.n_servers)
        if allocation.shape != expected:
            raise ConfigurationError(
                f"allocation shape {allocation.shape} != {expected}"
            )
        if not np.isin(allocation, (0, 1)).all():
            raise ConfigurationError("allocation must be binary")
        if np.any(allocation.sum(axis=0) > self.config.rho):
            raise ConfigurationError("allocation overfills a server cache")
        if sticky_owner is not None:
            sticky_owner = np.asarray(sticky_owner, dtype=np.int64)
            if sticky_owner.shape != (self.config.n_items,):
                raise ConfigurationError(
                    "sticky_owner must map every item to a server"
                )
            for item, owner in enumerate(sticky_owner):
                pos = self.server_position.get(int(owner))
                if pos is None or not allocation[item, pos]:
                    raise ConfigurationError(
                        f"sticky owner of item {item} does not hold a copy"
                    )
        # Pin sticky items first so pinning cannot hit a full cache.
        if sticky_owner is not None:
            for item, owner in enumerate(sticky_owner):
                cache = self.nodes[int(owner)].cache
                assert cache is not None
                cache.pin(item)
        for pos, node_id in enumerate(self.server_ids):
            cache = self.nodes[int(node_id)].cache
            assert cache is not None
            for item in np.where(allocation[:, pos])[0]:
                cache.add(int(item))
        self.counts = allocation.sum(axis=1).astype(np.int64)
        for pos, node_id in enumerate(self.server_ids):
            self.occupancy[int(node_id)] = allocation[:, pos] != 0
        self.sticky_owner = sticky_owner
        self._initialized = True
        if self.tracer is not None:
            self.tracer.emit(
                trace_events.ALLOC,
                self._now,
                counts=[int(c) for c in self.counts],
            )

    def insert_copy(self, node: NodeState, item: int) -> bool:
        """Insert a replica of *item* at *node*, evicting randomly.

        Returns True when the cache now holds a new copy of *item*;
        False when the node is not a server, already holds it, or every
        slot is pinned.  Replica accounting is updated for both the
        insertion and any eviction.
        """
        cache = node.cache
        if cache is None or item in cache:
            return False
        before = len(cache)
        victim = cache.insert(item, self.rng)
        if item not in cache:
            return False  # refused: all slots sticky
        self.counts[item] += 1
        occupancy_row = self.occupancy[node.node_id]
        occupancy_row[item] = True
        if victim is not None:
            self.counts[victim] -= 1
            occupancy_row[victim] = False
        elif len(cache) == before:  # pragma: no cover - defensive
            raise SimulationError("cache bookkeeping out of sync")
        if self.tracer is not None:
            self.tracer.emit(
                trace_events.REPLICA_ADD,
                self._now,
                node=node.node_id,
                item=int(item),
                evicted=None if victim is None else int(victim),
            )
        return True

    def remove_copy(self, node: NodeState, item: int) -> bool:
        """Remove a (non-sticky) replica, keeping the counts consistent.

        Not used by any protocol; exposed for failure-injection
        experiments and tests.
        """
        cache = node.cache
        if cache is None or not cache.discard(item):
            return False
        self.counts[item] -= 1
        self.occupancy[node.node_id, item] = False
        if self.tracer is not None:
            self.tracer.emit(
                trace_events.REPLICA_DROP,
                self._now,
                node=node.node_id,
                item=int(item),
            )
        return True

    def sticky_node_of(self, item: int) -> int:
        """Node id of the item's sticky replica, or ``-1`` if none."""
        if self.sticky_owner is None:
            return -1
        return int(self.sticky_owner[item])

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Process all events and return the collected metrics."""
        timer = Stopwatch() if self._collect_manifest else None
        # Loop specialization instead of per-event branching: untraced
        # fault-free runs take the fully inlined plain loop (no tracer,
        # online, or drop-probability tests at all), untraced runs with
        # fault injection add exactly those tests back, and traced runs
        # use the _traced_* handler duplicates.  All three consume the
        # same pre-chunked event stream, so snapshot instants and event
        # order are identical by construction.
        if self.tracer is not None:
            self._run_traced()
        elif self.faults is None:
            self._run_plain()
        else:
            self._run_with_faults()
        n_unfulfilled = self._settle_unfulfilled()
        manifest = None
        if timer is not None:
            timer.stop()
            manifest = RunManifest(
                config_fingerprint=self.config.fingerprint(),
                seed=self._seed_value,
                protocol=self.protocol.name,
                wall_s=timer.wall,
                cpu_s=timer.cpu,
                n_events=len(self._event_times),
            ).to_dict()
        result = self.metrics.build_result(
            self.counts, n_unfulfilled, manifest=manifest
        )
        if self.tracer is not None:
            summary = {
                key: (value if math.isfinite(value) else None)
                for key, value in result.summary().items()
            }
            self.tracer.emit(
                trace_events.RUN_END, self.trace.duration, summary=summary
            )
            self.tracer.flush()
        return result

    # ------------------------------------------------------------------
    # traced handlers (selected in run() when tracing is on)
    #
    # These duplicate the bare handlers below plus emission sites, so
    # the untraced hot path carries no tracer loads or is-None tests at
    # all.  Keep both copies in sync: the tracing-equivalence tests in
    # tests/sim/test_tracing.py assert traced and untraced runs produce
    # bit-identical results.
    # ------------------------------------------------------------------
    def _traced_request(self, t: float, item: int, node_id: int) -> None:
        self._now = t
        tracer = self.tracer
        assert tracer is not None  # selected only when tracing is active
        node = self.nodes[node_id]
        if not node.online:
            # The device is down; its user generates no request.
            self.metrics.n_requests_offline += 1
            tracer.emit(trace_events.OFFLINE, t, item=item, node=node_id)
            return
        self.metrics.record_generated()
        if node.is_server and node.cache is not None and item in node.cache:
            if self._skip_self:
                self.metrics.record_skipped_self()
                tracer.emit(trace_events.SKIPPED, t, item=item, node=node_id)
                return
            h0 = self._h0
            if not math.isfinite(h0):
                raise SimulationError(
                    f"{self.config.utility.name} has h(0+) = inf and node "
                    f"{node_id} requested item {item} it already caches; "
                    "use self_request_policy='skip' or a dedicated-node "
                    "scenario"
                )
            self.metrics.record_fulfillment(t, 0.0, h0, immediate=True)
            tracer.emit(
                trace_events.IMMEDIATE, t, item=item, node=node_id, gain=h0
            )
            return
        node.add_request(Request(item, node_id, t))
        tracer.emit(trace_events.REQUEST, t, item=item, node=node_id)

    def _traced_contact(self, t: float, a: int, b: int) -> None:
        self._now = t
        nodes = self.nodes
        node_a = nodes[a]
        node_b = nodes[b]
        if not (node_a.online and node_b.online):
            self.metrics.n_contacts_blocked += 1
            return
        if self._drop_prob > 0.0 and self._fault_rng is not None:
            if self._fault_rng.random() < self._drop_prob:
                self.metrics.n_contacts_dropped += 1
                assert self.tracer is not None
                self.tracer.emit(trace_events.CONTACT_DROP, t, a=a, b=b)
                return
        if (
            self._hook_free_contact
            and not node_a.outstanding
            and not node_b.outstanding
        ):
            # Nothing to query in either direction and the protocol has
            # no contact hook: the meeting is a no-op.
            return
        self._traced_exchange(t, node_a, node_b)
        self._traced_exchange(t, node_b, node_a)
        if not self._hook_free_contact:
            self.protocol.after_contact(self, t, node_a, node_b)

    def _traced_exchange(
        self, t: float, requester: NodeState, provider: NodeState
    ) -> None:
        if not provider.is_server:
            return
        outstanding = requester.outstanding
        if not outstanding:
            return
        timeout = self._timeout
        if timeout is not None:
            self._traced_expire(requester, t - timeout)
            if not outstanding:
                return
        provider_cache = provider.cache  # non-None: provider is a server
        tracer = self.tracer
        assert tracer is not None
        fulfilled = None
        for item, request_list in outstanding.items():
            for request in request_list:
                request.counter += 1
            # One SEEN event per (item, requester) query edge — the
            # Lemma-1 meeting process — covering all n same-item
            # requests at this node.
            tracer.emit(
                trace_events.SEEN,
                t,
                item=item,
                node=requester.node_id,
                server=provider.node_id,
                n=len(request_list),
            )
            if item in provider_cache:
                if fulfilled is None:
                    fulfilled = [item]
                else:
                    fulfilled.append(item)
        if fulfilled is None:
            return
        utility = self._utility
        h0 = self._h0
        isfinite = math.isfinite
        record_fulfillment = self.metrics.record_fulfillment
        notify = not self._hook_free_fulfill
        on_fulfill = self.protocol.on_fulfill
        for item in fulfilled:
            for request in outstanding.pop(item):
                delay = t - request.created_at
                gain = float(utility(delay)) if delay > 0 else h0
                if not isfinite(gain):
                    # Measure-zero tie between a request and a contact at
                    # the same instant under an unbounded utility.
                    gain = 0.0
                record_fulfillment(t, delay, gain)
                tracer.emit(
                    trace_events.FULFILL,
                    t,
                    item=item,
                    node=requester.node_id,
                    server=provider.node_id,
                    delay=delay,
                    gain=gain,
                    counter=request.counter,
                )
                if notify:
                    on_fulfill(
                        self, t, requester, provider, item, request.counter
                    )

    def _traced_expire(self, node: NodeState, deadline: float) -> None:
        abandoned_gain = self._abandoned_gain
        credit = self._credit_abandoned
        stale_items = None
        for item, request_list in node.outstanding.items():
            if any(r.created_at < deadline for r in request_list):
                if stale_items is None:
                    stale_items = [item]
                else:
                    stale_items.append(item)
        if stale_items is None:
            return
        tracer = self.tracer
        assert tracer is not None
        for item in stale_items:
            request_list = node.outstanding[item]
            kept = [r for r in request_list if r.created_at >= deadline]
            expired = len(request_list) - len(kept)
            if credit:
                for _ in range(expired):
                    self.metrics.record_abandonment(deadline, abandoned_gain)
            self.metrics.n_expired += expired
            for request in request_list:
                if request.created_at < deadline:
                    tracer.emit(
                        trace_events.ABANDON,
                        deadline,
                        item=item,
                        node=node.node_id,
                        created_at=request.created_at,
                    )
            if kept:
                node.outstanding[item] = kept
            else:
                del node.outstanding[item]

    def _traced_fault(self, t: float, event: FaultEvent) -> None:
        self._now = t
        self._apply_fault(t, event)

    # ------------------------------------------------------------------
    # specialized event loops
    #
    # Three copies of the event loop over the pre-chunked stream, one
    # per (tracing, faults) mode.  The plain loop inlines request
    # bookkeeping and skips exchange calls whose early-return guards
    # (non-server provider, empty outstanding table) are visible from
    # the flat state tables — those guards touch no state and no RNG,
    # so eliding the call is bit-identical.  Keep the copies in sync:
    # the equivalence tests in tests/sim/ compare all of them against
    # sim/_reference.py.
    # ------------------------------------------------------------------
    def _run_plain(self) -> None:
        """Untraced, fault-free: every node is permanently online.

        Consumes the widened event layout: contacts carry each
        endpoint's precomputed inclusive server-meeting count (``-1``
        when that direction's provider is not a server), requests carry
        the node's count at creation (stashed in ``Request.counter``
        and turned into the final query counter by subtraction at
        fulfillment — see ``_fulfill_hits``).
        """
        nodes = self.nodes
        outstanding_tbl = self._outstanding_tbl
        cache_tbl = self._cache_tbl
        mandates_tbl = self._mandates_tbl
        metrics = self.metrics
        record_fulfillment = metrics.record_fulfillment
        fulfill_hits = self._fulfill_hits
        fulfill_direction = self._fulfill_direction
        hooked = not self._hook_free_contact
        idle_hook = self._contact_hook_idle
        after_contact = self.protocol.after_contact
        skip_self = self._skip_self
        h0 = self._h0
        h0_finite = self._h0_finite
        no_timeout = self._timeout is None
        for events, snap in self._chunks:
            for kind, t, a, b, x, y in events:
                if kind == 2:  # EVENT_CONTACT; x/y = meeting counts
                    out = outstanding_tbl[a]
                    if out and x >= 0:
                        if no_timeout:
                            hits = out.keys() & cache_tbl[b]
                            if hits:
                                fulfill_hits(t, a, b, x, out, hits)
                        else:
                            fulfill_direction(t, a, b, x)
                    out = outstanding_tbl[b]
                    if out and y >= 0:
                        if no_timeout:
                            hits = out.keys() & cache_tbl[a]
                            if hits:
                                fulfill_hits(t, b, a, y, out, hits)
                        else:
                            fulfill_direction(t, b, a, y)
                    if hooked and (
                        not idle_hook or mandates_tbl[a] or mandates_tbl[b]
                    ):
                        after_contact(self, t, nodes[a], nodes[b])
                else:  # EVENT_REQUEST: a = item, b = node, x = birth
                    metrics.n_generated += 1
                    if a in cache_tbl[b]:
                        if skip_self:
                            metrics.n_skipped_self += 1
                        elif h0_finite:
                            record_fulfillment(t, 0.0, h0, immediate=True)
                        else:
                            self._raise_infinite_h0(a, b)
                    else:
                        out = outstanding_tbl[b]
                        request_list = out.get(a)
                        if request_list is None:
                            out[a] = [Request(a, b, t, x)]
                        else:
                            request_list.append(Request(a, b, t, x))
            if snap is not None:
                self._take_snapshot(snap)

    def _run_with_faults(self) -> None:
        """Untraced with fault injection: online/drop tests restored.

        Blocked and dropped contacts must not advance query counters,
        so the per-node server-meeting counts are maintained here
        dynamically instead of precomputed from the trace.
        """
        nodes = self.nodes
        outstanding_tbl = self._outstanding_tbl
        cache_tbl = self._cache_tbl
        is_server_tbl = self._is_server_tbl
        mandates_tbl = self._mandates_tbl
        metrics = self.metrics
        record_fulfillment = metrics.record_fulfillment
        fulfill_direction = self._fulfill_direction
        hooked = not self._hook_free_contact
        idle_hook = self._contact_hook_idle
        after_contact = self.protocol.after_contact
        skip_self = self._skip_self
        h0 = self._h0
        h0_finite = self._h0_finite
        drop_prob = self._drop_prob
        fault_rng = self._fault_rng
        fault_events = self._fault_events
        meet_counts = [0] * len(nodes)
        for events, snap in self._chunks:
            for kind, t, a, b in events:
                if kind == 2:  # EVENT_CONTACT
                    node_a = nodes[a]
                    node_b = nodes[b]
                    if not (node_a.online and node_b.online):
                        metrics.n_contacts_blocked += 1
                        continue
                    if drop_prob > 0.0 and fault_rng is not None:
                        if fault_rng.random() < drop_prob:
                            metrics.n_contacts_dropped += 1
                            continue
                    if is_server_tbl[b]:
                        count = meet_counts[a] + 1
                        meet_counts[a] = count
                        if outstanding_tbl[a]:
                            fulfill_direction(t, a, b, count)
                    if is_server_tbl[a]:
                        count = meet_counts[b] + 1
                        meet_counts[b] = count
                        if outstanding_tbl[b]:
                            fulfill_direction(t, b, a, count)
                    if hooked and (
                        not idle_hook or mandates_tbl[a] or mandates_tbl[b]
                    ):
                        after_contact(self, t, node_a, node_b)
                elif kind == 1:  # EVENT_REQUEST: a = item, b = node
                    if not nodes[b].online:
                        # The device is down; no request is generated.
                        metrics.n_requests_offline += 1
                        continue
                    metrics.n_generated += 1
                    if a in cache_tbl[b]:
                        if skip_self:
                            metrics.n_skipped_self += 1
                        elif h0_finite:
                            record_fulfillment(t, 0.0, h0, immediate=True)
                        else:
                            self._raise_infinite_h0(a, b)
                    else:
                        out = outstanding_tbl[b]
                        request_list = out.get(a)
                        if request_list is None:
                            out[a] = [Request(a, b, t, meet_counts[b])]
                        else:
                            request_list.append(
                                Request(a, b, t, meet_counts[b])
                            )
                else:  # EVENT_FAULT: a = fault index
                    self._apply_fault(t, fault_events[a])
            if snap is not None:
                self._take_snapshot(snap)

    def _run_traced(self) -> None:
        """Traced: per-event handlers that interleave emission."""
        fault_events = self._fault_events
        handle_contact = self._traced_contact
        handle_request = self._traced_request
        handle_fault = self._traced_fault
        for events, snap in self._chunks:
            for kind, t, a, b in events:
                if kind == EVENT_CONTACT:
                    handle_contact(t, a, b)
                elif kind == EVENT_REQUEST:
                    handle_request(t, a, b)
                else:
                    handle_fault(t, fault_events[a])
            if snap is not None:
                self._take_snapshot(snap)

    def _raise_infinite_h0(self, item: int, node_id: int) -> None:
        raise SimulationError(
            f"{self.config.utility.name} has h(0+) = inf and node "
            f"{node_id} requested item {item} it already caches; "
            "use self_request_policy='skip' or a dedicated-node "
            "scenario"
        )

    def _fulfill_direction(
        self, t: float, requester_id: int, provider_id: int, meet_count: int
    ) -> None:
        """One direction of the metadata exchange: expire, query, fulfill.

        *meet_count* is the requester's server-meeting count including
        this contact; a pending request's final query counter is
        ``meet_count - request.counter`` (its count at creation).
        """
        outstanding = self._outstanding_tbl[requester_id]
        timeout = self._timeout
        if timeout is not None:
            self._expire_requests(self.nodes[requester_id], t - timeout)
            if not outstanding:
                return
        hits = outstanding.keys() & self._cache_tbl[provider_id]
        if hits:
            self._fulfill_hits(
                t, requester_id, provider_id, meet_count, outstanding, hits
            )

    def _fulfill_hits(
        self,
        t: float,
        requester_id: int,
        provider_id: int,
        meet_count: int,
        outstanding: Dict[int, List[Request]],
        hits: AbstractSet[int],
    ) -> None:
        """Fulfill the *hits* items, in the requester's insertion order."""
        if len(hits) < len(outstanding):
            fulfilled = [item for item in outstanding if item in hits]
        else:
            fulfilled = list(outstanding)
        utility = self._utility
        h0 = self._h0
        isfinite = math.isfinite
        record_fulfillment = self.metrics.record_fulfillment
        notify = not self._hook_free_fulfill
        on_fulfill = self.protocol.on_fulfill
        requester = self.nodes[requester_id]
        provider = self.nodes[provider_id]
        for item in fulfilled:
            for request in outstanding.pop(item):
                delay = t - request.created_at
                gain = float(utility(delay)) if delay > 0 else h0
                if not isfinite(gain):
                    # Measure-zero tie between a request and a contact at
                    # the same instant under an unbounded utility.
                    gain = 0.0
                record_fulfillment(t, delay, gain)
                if notify:
                    on_fulfill(
                        self,
                        t,
                        requester,
                        provider,
                        item,
                        meet_count - request.counter,
                    )

    def _expire_requests(self, node: NodeState, deadline: float) -> None:
        """Drop outstanding requests created before *deadline*."""
        abandoned_gain = self._abandoned_gain
        credit = self._credit_abandoned
        stale_items = None
        for item, request_list in node.outstanding.items():
            if any(r.created_at < deadline for r in request_list):
                if stale_items is None:
                    stale_items = [item]
                else:
                    stale_items.append(item)
        if stale_items is None:
            return
        for item in stale_items:
            request_list = node.outstanding[item]
            kept = [r for r in request_list if r.created_at >= deadline]
            expired = len(request_list) - len(kept)
            if credit:
                for _ in range(expired):
                    self.metrics.record_abandonment(deadline, abandoned_gain)
            self.metrics.n_expired += expired
            if kept:
                node.outstanding[item] = kept
            else:
                del node.outstanding[item]

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def _apply_fault(self, t: float, event: FaultEvent) -> None:
        if event.kind == "crash":
            self._crash_node(t, event)
        elif event.kind == "recover":
            self._recover_node(t, event)
        else:  # "replica_loss"
            self._lose_replica(t, event)

    def _crash_node(self, t: float, event: FaultEvent) -> None:
        node = self.nodes[event.node]  # type: ignore[index]
        if not node.online:
            return  # already down; crash is idempotent
        node.online = False
        self.metrics.record_crash(t, node.node_id)
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                trace_events.CRASH,
                t,
                node=node.node_id,
                n_requests_lost=(
                    node.n_outstanding() if node.outstanding else 0
                ),
                n_mandates_lost=(
                    sum(node.mandates.values())
                    if event.lose_mandates and node.mandates
                    else 0
                ),
            )
            for item, request_list in node.outstanding.items():
                for request in request_list:
                    tracer.emit(
                        trace_events.LOST,
                        t,
                        item=item,
                        node=node.node_id,
                        created_at=request.created_at,
                    )
        if node.outstanding:
            self.metrics.n_requests_lost += node.n_outstanding()
            node.outstanding.clear()
        if event.lose_mandates and node.mandates:
            self.metrics.n_mandates_lost += sum(node.mandates.values())
            node.mandates.clear()
        if event.wipe_cache and node.cache is not None and len(node.cache):
            assert self.faults is not None
            count_before = int(self.counts.sum())
            cache = node.cache
            lost = 0
            if not self.faults.sticky_survives and cache.sticky is not None:
                item = cache.unpin()
                if item is not None and self.sticky_owner is not None:
                    # The network-wide no-extinction guarantee is gone
                    # for this item; mandate routing stops favoring the
                    # (now nonexistent) sticky node.
                    self.sticky_owner[item] = -1
            for item in sorted(cache.items()):
                if self.remove_copy(node, item):
                    lost += 1
            self.metrics.record_replica_loss(t, lost, count_before)

    def _recover_node(self, t: float, event: FaultEvent) -> None:
        node = self.nodes[event.node]  # type: ignore[index]
        if node.online:
            return
        node.online = True
        self.metrics.record_recovery(t, node.node_id)
        if self.tracer is not None:
            self.tracer.emit(trace_events.RECOVER, t, node=node.node_id)

    def _lose_replica(self, t: float, event: FaultEvent) -> None:
        count_before = int(self.counts.sum())
        if event.node is not None:
            node = self.nodes[event.node]
            item = event.item
            if item is None:
                item = self._pick_lossy_item(node)
                if item is None:
                    return
            if self.remove_copy(node, item):
                self.metrics.record_replica_loss(t, 1, count_before)
            return
        # Unresolved loss: destroy a uniformly random non-sticky
        # replica anywhere in the network (schedule RNG, sorted
        # candidate order — fully deterministic per schedule seed).
        rng = self._fault_rng
        assert rng is not None
        candidates = [
            (node, item)
            for node in self.nodes
            if node.cache is not None
            for item in sorted(node.cache.items())
            if item != node.cache.sticky
        ]
        if not candidates:
            return
        node, item = candidates[int(rng.integers(len(candidates)))]
        if self.remove_copy(node, item):
            self.metrics.record_replica_loss(t, 1, count_before)

    def _pick_lossy_item(self, node: NodeState) -> Optional[int]:
        """A random non-sticky cached item of *node*, or ``None``."""
        cache = node.cache
        if cache is None:
            return None
        rng = self._fault_rng
        assert rng is not None
        pool = [i for i in sorted(cache.items()) if i != cache.sticky]
        if not pool:
            return None
        return pool[int(rng.integers(len(pool)))]

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _take_snapshot(self, t: float) -> None:
        mandates = self.protocol.mandate_totals(self)
        self.metrics.record_snapshot(t, self.counts, mandates)

    def _settle_unfulfilled(self) -> int:
        """Apply the end-of-horizon policy to outstanding requests."""
        utility = self.config.utility
        horizon = self.trace.duration
        truncate = self.config.unfulfilled_policy == "truncate"
        tracer = self.tracer
        n_unfulfilled = 0
        for node in self.nodes:
            for item, request_list in node.outstanding.items():
                for request in request_list:
                    n_unfulfilled += 1
                    if tracer is not None:
                        tracer.emit(
                            trace_events.UNFULFILLED,
                            horizon,
                            item=item,
                            node=node.node_id,
                            created_at=request.created_at,
                            age=horizon - request.created_at,
                        )
                    if truncate:
                        age = horizon - request.created_at
                        if age > 0:
                            gain = float(utility(age))
                            if math.isfinite(gain):
                                self.metrics.record_end_of_run_gain(gain)
        return n_unfulfilled


def simulate(
    trace: ContactTrace,
    requests: RequestSchedule,
    config: SimulationConfig,
    protocol: ReplicationProtocol,
    seed: SeedLike = None,
    faults: Optional[FaultSchedule] = None,
    tracer: Optional[Tracer] = None,
    manifest: bool = False,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulation` and run it.

    *tracer*, when active, records the full request lifecycle (see
    :mod:`repro.obs`); *manifest* forces provenance collection even on
    untraced runs (traced runs always collect it).
    """
    return Simulation(
        trace,
        requests,
        config,
        protocol,
        seed=seed,
        faults=faults,
        tracer=tracer,
        collect_manifest=manifest,
    ).run()
