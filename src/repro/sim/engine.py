"""The discrete-event simulator.

Replays a contact trace against a request schedule and a replication
protocol, implementing the semantics of the paper's Section 6.1:

* on every contact the two nodes exchange metadata; every outstanding
  request of either node that the other's cache can satisfy is fulfilled,
  crediting the delay-utility ``h(age)``;
* every outstanding request's query counter increments once per meeting
  with a server (the fulfilling meeting included);
* protocol hooks run after fulfillment (mandate creation for QCR) and at
  the end of the contact (mandate execution and routing);
* requests for items a node itself caches are fulfilled immediately with
  gain ``h(0+)`` (configurable, see
  :class:`~repro.sim.config.SimulationConfig`).

The engine never decides replication itself — static allocations simply do
nothing in the hooks — so every algorithm of Section 6 runs on identical
machinery and identical randomness.
"""

from __future__ import annotations

import math
from typing import (
    AbstractSet,
    Collection,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
)

import numpy as np
import numpy.typing as npt

#: Merge granularity of the streamed event pipeline: contacts are pulled
#: off the (possibly memory-mapped) trace in runs of about this many
#: events, so peak heap scales with the chunk, not the trace.
_DEFAULT_CHUNK_EVENTS = 1 << 18
#: Sub-chunk granularity of the masked plain loop: the per-node activity
#: snapshot used to skip no-op contacts is refreshed every block, so
#: smaller blocks skip more but amortize less vectorized work.
_MASK_BLOCK_EVENTS = 1 << 15
#: Below this node count the activity mask cannot stay selective (every
#: node requests within one block) and the segmented loop is used.
_MASK_MIN_NODES = 512

#: Version of the engine's observable semantics, keyed into the
#: content-addressed run cache (:mod:`repro.simcache`).  Bump whenever a
#: change could alter simulation *results* — cached entries from older
#: versions then stop matching and are recomputed.  Pure speedups that
#: keep bit-identity (the contract enforced against ``sim/_reference``)
#: do not require a bump.
ENGINE_CODE_VERSION = "2026.08-array-core-1"

from ..contacts import ContactTrace
from ..demand import RequestSchedule
from ..errors import ConfigurationError, SimulationError
from ..faults import FaultEvent, FaultSchedule
from ..obs import events as trace_events
from ..obs import metrics as obs_metrics
from ..obs.manifest import RunManifest
from ..obs.timing import Stopwatch
from ..obs.tracer import Tracer
from ..protocols.base import ReplicationProtocol
from ..types import FloatArray, IntArray, SeedLike, as_rng
from ..utility import StepUtility
from .config import SimulationConfig
from .events import (
    EVENT_CONTACT,
    EVENT_FAULT,
    EVENT_REQUEST,
    Chunk as _Chunk,
    EventStream,
    build_event_stream,
    compute_plain_payloads,
    cut_chunks,
    memmap_backed as _memmap_backed,
    stream_side_state,
)
from .metrics import MetricsCollector, SimulationResult
from .node import NodeState, Request

__all__ = ["Simulation", "simulate"]


class Simulation:
    """One simulation run binding trace, demand, config, and protocol.

    *faults*, when given, is merged into the event loop as a third
    stream alongside contacts and requests (see :mod:`repro.faults`):
    offline nodes neither exchange content nor generate requests, cache
    wipes and replica losses go through :meth:`remove_copy` so replica
    accounting stays consistent, and all fault randomness comes from the
    schedule's own RNG — a run with ``faults=None`` is bit-identical to
    one before fault injection existed.
    """

    __slots__ = (
        "trace",
        "requests",
        "config",
        "protocol",
        "rng",
        "faults",
        "_fault_rng",
        "_drop_prob",
        "server_ids",
        "client_ids",
        "nodes",
        "server_position",
        "counts",
        "occupancy",
        "sticky_owner",
        "_initialized",
        "tracer",
        "_metrics_reg",
        "_m_replica_add",
        "_m_replica_drop",
        "_phase_timer",
        "_collect_manifest",
        "_seed_value",
        "_now",
        "metrics",
        "_utility",
        "_h0",
        "_h0_finite",
        "_step_tau",
        "_timeout",
        "_skip_self",
        "_abandoned_gain",
        "_credit_abandoned",
        "_hook_free_contact",
        "_hook_free_fulfill",
        "_event_times",
        "_event_kinds",
        "_event_a",
        "_event_b",
        "_fault_events",
        "_fault_times",
        "_req_times",
        "_req_items",
        "_req_nodes",
        "_is_server_arr",
        "_requester_arr",
        "_all_servers",
        "_n_events",
        "_chunk_events",
        "_prebuilt_events",
        "_streamed",
        "_snap_times",
        "_payload_needed",
        "_chunks",
        "_outstanding_tbl",
        "_cache_tbl",
        "_is_server_tbl",
        "_mandates_tbl",
        "_contact_hook_idle",
    )

    def __init__(
        self,
        trace: ContactTrace,
        requests: RequestSchedule,
        config: SimulationConfig,
        protocol: ReplicationProtocol,
        seed: SeedLike = None,
        faults: Optional[FaultSchedule] = None,
        tracer: Optional[Tracer] = None,
        collect_manifest: bool = False,
        chunk_events: Optional[int] = None,
        prebuilt_events: Optional[EventStream] = None,
    ) -> None:
        if chunk_events is not None and chunk_events < 1:
            raise ConfigurationError(
                f"chunk_events must be >= 1, got {chunk_events}"
            )
        if prebuilt_events is not None and chunk_events is not None:
            raise ConfigurationError(
                "prebuilt_events is incompatible with chunk_events: "
                "prebuilt streams are eager by construction"
            )
        self._chunk_events = chunk_events
        self._prebuilt_events = prebuilt_events
        if requests.duration > trace.duration + 1e-9:
            raise ConfigurationError(
                "request schedule extends past the contact trace"
            )
        self.trace = trace
        self.requests = requests
        self.config = config
        self.protocol = protocol
        self.rng = as_rng(seed)
        self.faults = faults
        if faults is not None:
            for event in faults.events:
                if event.node is not None and event.node >= trace.n_nodes:
                    raise ConfigurationError(
                        f"fault event node {event.node} out of range "
                        f"for a {trace.n_nodes}-node trace"
                    )
                if event.item is not None and event.item >= config.n_items:
                    raise ConfigurationError(
                        f"fault event item {event.item} out of range "
                        f"for a {config.n_items}-item catalog"
                    )
            self._fault_rng = faults.runtime_rng()
            self._drop_prob = faults.drop_prob
        else:
            self._fault_rng = None
            self._drop_prob = 0.0

        n_nodes = trace.n_nodes
        self.server_ids = config.server_ids(n_nodes)
        self.client_ids = config.client_ids(n_nodes)
        server_set = set(int(m) for m in self.server_ids)
        client_set = set(int(n) for n in self.client_ids)
        if len(requests.nodes) and not set(
            int(n) for n in np.unique(requests.nodes)
        ) <= client_set:
            raise ConfigurationError(
                "request schedule contains non-client node ids"
            )

        self.nodes: List[NodeState] = [
            NodeState(
                node_id,
                is_server=node_id in server_set,
                is_client=node_id in client_set,
                capacity=config.rho,
            )
            for node_id in range(n_nodes)
        ]
        #: Server node id -> column position in allocation matrices.
        self.server_position = {
            int(node): pos for pos, node in enumerate(self.server_ids)
        }
        self.counts = np.zeros(config.n_items, dtype=np.int64)
        #: Boolean ``(n_nodes, n_items)`` cache-occupancy matrix — the
        #: array view of every server cache, kept consistent with the
        #: per-cache sets by :meth:`set_initial_allocation`,
        #: :meth:`insert_copy`, and :meth:`remove_copy` (all cache
        #: mutation funnels through those three).  ``counts`` is its
        #: column sum; batch analyses read it instead of walking caches.
        self.occupancy = np.zeros((n_nodes, config.n_items), dtype=bool)
        self.sticky_owner: Optional[IntArray] = None
        self._initialized = False
        # Tracing: an inactive tracer (NullSink) resolves to None, and
        # run() then selects the bare event handlers — the untraced hot
        # path is byte-identical to the pre-telemetry engine.  Traced
        # runs use the _traced_* duplicates, which interleave emission
        # with the same logic.  Emission sites outside the hot loop
        # (replication, faults, settlement) stay guarded inline.
        self.tracer: Optional[Tracer] = (
            tracer if tracer is not None and tracer.active else None
        )
        # Metrics follow the same resolve-once discipline: a disabled
        # registry is None and every metrics site compiles down to the
        # bare path (the chunk iterator stays unwrapped, replication
        # sites skip one is-None test — same cost as the tracer guard).
        # Per-event hot loops are never instrumented directly; chunk
        # aggregation happens around them (see _iter_counted_chunks).
        self._metrics_reg: Optional[obs_metrics.MetricsRegistry] = (
            obs_metrics.enabled_registry()
        )
        if self._metrics_reg is not None:
            self._m_replica_add: Optional[obs_metrics.Counter] = (
                self._metrics_reg.counter(
                    "repro_sim_replica_adds_total",
                    help="replica insertions (evictions counted as drops)",
                )
            )
            self._m_replica_drop: Optional[obs_metrics.Counter] = (
                self._metrics_reg.counter(
                    "repro_sim_replica_drops_total",
                    help="replica removals (evictions and fault losses)",
                )
            )
        else:
            self._m_replica_add = None
            self._m_replica_drop = None
        self._collect_manifest = collect_manifest or self.tracer is not None
        #: Phase timing breakdown for the manifest (None ⇒ not collected).
        self._phase_timer: Optional[Stopwatch] = (
            Stopwatch() if self._collect_manifest else None
        )
        self._seed_value: Optional[int] = (
            int(seed) if isinstance(seed, (int, np.integer)) else None
        )
        #: Simulated time of the event being processed; maintained by the
        #: traced handler wrappers so replication events emitted from
        #: inside protocol hooks carry the right timestamp.
        self._now = 0.0
        if self.tracer is not None:
            self.tracer.emit(
                trace_events.RUN_START,
                0.0,
                n_nodes=n_nodes,
                n_items=config.n_items,
                duration=trace.duration,
                protocol=protocol.name,
            )
        self.metrics = MetricsCollector(
            duration=trace.duration,
            n_items=config.n_items,
            window_length=config.window_length,
            record_interval=config.record_interval,
            track_items=config.track_items,
        )
        protocol.initialize(self)
        if not self._initialized:
            raise SimulationError(
                f"protocol {protocol.name!r} did not set an initial allocation"
            )

        # Hot-path constants, resolved once per run instead of per event.
        utility = config.utility
        self._utility = utility
        self._h0 = utility.h0
        self._h0_finite = math.isfinite(utility.h0)
        # Step utilities admit a branch-only gain computation; resolving
        # tau here lets ``_fulfill_hits`` skip the utility call (and the
        # finiteness guard — a step gain is always 0 or 1) per fulfill.
        self._step_tau = (
            utility.tau if isinstance(utility, StepUtility) else None
        )
        self._timeout = config.request_timeout
        self._skip_self = config.self_request_policy == "skip"
        gain_never = utility.gain_never
        self._abandoned_gain = gain_never
        self._credit_abandoned = (
            math.isfinite(gain_never) and gain_never != 0.0
        )
        # Protocols that never override the contact/fulfill hooks (static
        # allocations, passive replication) let the engine skip the hook
        # dispatch — and, when neither endpoint has outstanding requests,
        # the whole exchange.
        cls = type(protocol)
        self._hook_free_contact = (
            cls.after_contact is ReplicationProtocol.after_contact
        )
        self._hook_free_fulfill = (
            cls.on_fulfill is ReplicationProtocol.on_fulfill
        )
        # Flat per-node state tables, indexed by node id.  All alias
        # live structures — NodeState.outstanding/mandates dicts and the
        # caches' backing sets (Cache.live_view() identity is stable) —
        # so the hot loops skip the NodeState attribute walk entirely
        # while every protocol-facing API still sees the same state.
        # Non-servers get one shared (immutable) empty set so membership
        # tests need no None branch.
        self._outstanding_tbl: List[Dict[int, List[Request]]] = [
            node.outstanding for node in self.nodes
        ]
        empty: AbstractSet[int] = frozenset()
        self._cache_tbl: List[AbstractSet[int]] = [
            node.cache.live_view() if node.cache is not None else empty
            for node in self.nodes
        ]
        self._is_server_tbl: List[bool] = [
            node.is_server for node in self.nodes
        ]
        self._mandates_tbl: List[Dict[int, int]] = [
            node.mandates for node in self.nodes
        ]
        # Protocols promising an idle after_contact() without mandates
        # (QCR family) let the engine skip the hook dispatch entirely on
        # mandate-free contacts — by far the common case.
        self._contact_hook_idle = bool(
            getattr(protocol, "contact_hook_idle_without_mandates", False)
        )
        if self._phase_timer is not None:
            with self._phase_timer.section("merge"):
                self._build_event_stream()
        else:
            self._build_event_stream()

    def _build_event_stream(self) -> None:
        """Install this run's merged event stream.

        The stream — contacts, requests, and faults interleaved by one
        stable ``np.lexsort`` on ``(time, kind)``, preserving the
        fault -> request -> contact same-time tie rule — is a pure
        function of ``(trace, requests, faults, config)`` and lives in
        :mod:`repro.sim.events`.  Three sources install it here:

        * a *prebuilt* stream (``prebuilt_events=``), validated by
          :meth:`_check_prebuilt` to belong to this very run's objects
          before being trusted — this is how a sweep merges once per
          trial instead of once per protocol;
        * streamed mode (an explicit ``chunk_events`` or a
          memory-mapped trace): nothing is materialized up front and
          ``_iter_streamed_chunks`` merges block by block while the
          run loops consume, so peak heap scales with the chunk, not
          the trace;
        * otherwise the eager builder materializes the stream now.

        Both modes cut the stream at the same snapshot instants and
        sort each block with the same stable key, so the concatenation
        of streamed blocks reproduces the eager order exactly — and a
        prebuilt stream is byte-for-byte the eager builder's output.
        """
        self._payload_needed = self.tracer is None and self.faults is None
        self._event_times: Optional[FloatArray] = None
        self._event_kinds: Optional[IntArray] = None
        self._event_a: Optional[IntArray] = None
        self._event_b: Optional[IntArray] = None
        self._chunks: Optional[List[_Chunk]] = None
        prebuilt = self._prebuilt_events
        if prebuilt is not None:
            self._check_prebuilt(prebuilt)
            self._streamed = False
            self._install_side_state(
                prebuilt.fault_events,
                prebuilt.fault_times,
                prebuilt.req_times,
                prebuilt.req_items,
                prebuilt.req_nodes,
                prebuilt.is_server,
                prebuilt.requester,
                prebuilt.all_servers,
                prebuilt.snap_times,
            )
            self._n_events = prebuilt.n_events
            self._event_times = prebuilt.event_times
            self._event_kinds = prebuilt.event_kinds
            self._event_a = prebuilt.event_a
            self._event_b = prebuilt.event_b
            self._chunks = prebuilt.chunks
            return
        trace = self.trace
        requests = self.requests
        self._streamed = self._chunk_events is not None or _memmap_backed(
            trace.times
        )
        if self._streamed:
            # Nothing is materialized up front: _iter_streamed_chunks
            # merges block by block while the run loops consume.
            side = stream_side_state(
                trace, requests, self.config, self.faults
            )
            self._install_side_state(
                side.fault_events,
                side.fault_times,
                side.req_times,
                side.req_items,
                side.req_nodes,
                side.is_server,
                side.requester,
                side.all_servers,
                side.snap_times,
            )
            self._n_events = (
                len(side.fault_events) + len(requests.times) + len(trace.times)
            )
            return
        stream = build_event_stream(
            trace,
            requests,
            self.config,
            self.faults,
            payloads=self._payload_needed,
        )
        self._install_side_state(
            stream.fault_events,
            stream.fault_times,
            stream.req_times,
            stream.req_items,
            stream.req_nodes,
            stream.is_server,
            stream.requester,
            stream.all_servers,
            stream.snap_times,
        )
        self._n_events = stream.n_events
        self._event_times = stream.event_times
        self._event_kinds = stream.event_kinds
        self._event_a = stream.event_a
        self._event_b = stream.event_b
        self._chunks = stream.chunks

    def _install_side_state(
        self,
        fault_events: List[FaultEvent],
        fault_times: FloatArray,
        req_times: FloatArray,
        req_items: IntArray,
        req_nodes: IntArray,
        is_server: npt.NDArray[np.bool_],
        requester: npt.NDArray[np.bool_],
        all_servers: bool,
        snap_times: List[float],
    ) -> None:
        self._fault_events = fault_events
        self._fault_times = fault_times
        self._req_times = req_times
        self._req_items = req_items
        self._req_nodes = req_nodes
        self._is_server_arr = is_server
        self._requester_arr = requester
        self._all_servers = all_servers
        self._snap_times = snap_times

    def _check_prebuilt(self, stream: EventStream) -> None:
        """A prebuilt stream is only trusted for this very run.

        Identity — not equality — is required for the trace, request,
        and fault objects: the stream's arrays index directly into
        them, and identity is exactly what the sweep runner's
        trial-scoped sharing provides.  The config check goes through
        the fingerprint so distinct-but-equivalent config objects (the
        common case across a sweep's protocol factories) are accepted.
        """
        if stream.trace is not self.trace:
            raise ConfigurationError(
                "prebuilt_events was built from a different contact trace"
            )
        if stream.requests is not self.requests:
            raise ConfigurationError(
                "prebuilt_events was built from a different request schedule"
            )
        if stream.faults is not self.faults:
            raise ConfigurationError(
                "prebuilt_events was built from a different fault schedule"
            )
        if stream.config_fingerprint != self.config.fingerprint():
            raise ConfigurationError(
                "prebuilt_events was built under a different configuration"
            )
        if self._payload_needed and not stream.payload_mode:
            raise ConfigurationError(
                "prebuilt_events lacks the plain-mode payload columns "
                "this untraced fault-free run consumes"
            )

    def _iter_chunks(self) -> Iterator[_Chunk]:
        """The pre-cut chunks (eager) or a block-merging generator.

        With metrics enabled the stream is wrapped in the counting
        generator; the inner specialized loops are byte-identical in
        both modes — aggregation happens per *chunk*, never per event.
        """
        base: Iterator[_Chunk] = (
            iter(self._chunks)
            if self._chunks is not None
            else self._iter_streamed_chunks()
        )
        if self._metrics_reg is None:
            return base
        return self._iter_counted_chunks(base)

    def _iter_counted_chunks(self, base: Iterator[_Chunk]) -> Iterator[_Chunk]:
        """Per-chunk metrics aggregation around the event stream.

        Counts chunks and events and observes the chunk-size histogram
        *between* chunks — pure arithmetic on registry state, no I/O,
        no clock, no simulation-state reads — so streamed-chunk
        progress is visible live (scrape the registry mid-run) without
        touching the hot loops' bit-identity.
        """
        reg = self._metrics_reg
        assert reg is not None
        chunks_total = reg.counter(
            "repro_sim_chunks_total",
            help="event-stream chunks consumed by the run loops",
        )
        events_total = reg.counter(
            "repro_sim_chunk_events_total",
            help="merged events delivered to the run loops",
        )
        chunk_sizes = reg.histogram(
            "repro_sim_chunk_events",
            help="events per consumed chunk",
            buckets=obs_metrics.exponential_buckets(1.0, 4.0, 12),
        )
        for chunk in base:
            n = len(chunk[0])
            chunks_total.inc()
            events_total.inc(n)
            chunk_sizes.observe(float(n))
            yield chunk

    def _iter_streamed_chunks(self) -> Iterator[_Chunk]:
        """Merge the three event streams block by block.

        Contacts are pulled off the (possibly memory-mapped) trace in
        runs of about ``chunk_events``, extended to cover the whole
        same-time run at the cut edge; the requests and faults up to
        the block's last contact time then merge in with the same
        stable lexsort the eager path uses.  Because each stream is
        time-sorted and no same-time contact run is ever split, the
        concatenation of the per-block sorts equals the global stable
        sort — streamed runs are bit-identical to eager ones.
        """
        trace = self.trace
        chunk = self._chunk_events or _DEFAULT_CHUNK_EVENTS
        ct = trace.times
        ca = trace.node_a
        cb = trace.node_b
        n_c = len(ct)
        req_times = self._req_times
        req_items = self._req_items
        req_nodes = self._req_nodes
        fault_times = self._fault_times
        n_q = len(req_times)
        n_f = len(fault_times)
        payload_needed = self._payload_needed
        meet_base = (
            np.zeros(len(self.nodes), dtype=np.int64)
            if payload_needed
            else None
        )
        c0 = r0 = f0 = 0
        snap_idx = 0
        while c0 < n_c:
            c1 = min(c0 + chunk, n_c)
            if c1 < n_c:
                # Never split a same-time contact run across blocks: a
                # request or fault at that instant must lexsort before
                # every one of those contacts, which requires them all
                # in the same block.
                c1 = int(np.searchsorted(ct, float(ct[c1 - 1]), side="right"))
            t_hi = float(ct[c1 - 1])
            last = c1 >= n_c
            if last:
                r1, f1 = n_q, n_f
            else:
                r1 = int(np.searchsorted(req_times, t_hi, side="right"))
                f1 = int(np.searchsorted(fault_times, t_hi, side="right"))
            n_fb, n_qb = f1 - f0, r1 - r0
            total = n_fb + n_qb + (c1 - c0)
            times = np.empty(total, dtype=np.float64)
            times[:n_fb] = fault_times[f0:f1]
            times[n_fb : n_fb + n_qb] = req_times[r0:r1]
            times[n_fb + n_qb :] = ct[c0:c1]
            kinds = np.empty(total, dtype=np.int64)
            kinds[:n_fb] = EVENT_FAULT
            kinds[n_fb : n_fb + n_qb] = EVENT_REQUEST
            kinds[n_fb + n_qb :] = EVENT_CONTACT
            arg_a = np.empty(total, dtype=np.int64)
            arg_a[:n_fb] = np.arange(f0, f1)
            arg_a[n_fb : n_fb + n_qb] = req_items[r0:r1]
            arg_a[n_fb + n_qb :] = ca[c0:c1]
            arg_b = np.zeros(total, dtype=np.int64)
            arg_b[n_fb : n_fb + n_qb] = req_nodes[r0:r1]
            arg_b[n_fb + n_qb :] = cb[c0:c1]
            order = np.lexsort((kinds, times))
            times = times[order]
            kinds = kinds[order]
            arg_a = arg_a[order]
            arg_b = arg_b[order]
            if payload_needed:
                assert meet_base is not None
                payload_x, payload_y = compute_plain_payloads(
                    kinds, arg_a, arg_b, meet_base,
                    is_server=self._is_server_arr,
                    requester=self._requester_arr,
                )
            else:
                payload_x = payload_y = None
            chunks, snap_idx = cut_chunks(
                kinds, times, arg_a, arg_b, payload_x, payload_y,
                snap_times=self._snap_times, snap_idx=snap_idx,
                last=last, payload_mode=payload_needed,
            )
            yield from chunks
            c0, r0, f0 = c1, r1, f1
        if r0 < n_q or f0 < n_f or snap_idx < len(self._snap_times):
            # Contact-free tail: requests/faults past the last contact
            # (or a contact-free trace) plus any still-pending
            # snapshots flush in one final block.
            n_fb, n_qb = n_f - f0, n_q - r0
            total = n_fb + n_qb
            times = np.empty(total, dtype=np.float64)
            times[:n_fb] = fault_times[f0:]
            times[n_fb:] = req_times[r0:]
            kinds = np.empty(total, dtype=np.int64)
            kinds[:n_fb] = EVENT_FAULT
            kinds[n_fb:] = EVENT_REQUEST
            arg_a = np.empty(total, dtype=np.int64)
            arg_a[:n_fb] = np.arange(f0, n_f)
            arg_a[n_fb:] = req_items[r0:]
            arg_b = np.zeros(total, dtype=np.int64)
            arg_b[n_fb:] = req_nodes[r0:]
            order = np.lexsort((kinds, times))
            times = times[order]
            kinds = kinds[order]
            arg_a = arg_a[order]
            arg_b = arg_b[order]
            if payload_needed:
                assert meet_base is not None
                payload_x, payload_y = compute_plain_payloads(
                    kinds, arg_a, arg_b, meet_base,
                    is_server=self._is_server_arr,
                    requester=self._requester_arr,
                )
            else:
                payload_x = payload_y = None
            chunks, _ = cut_chunks(
                kinds, times, arg_a, arg_b, payload_x, payload_y,
                snap_times=self._snap_times, snap_idx=snap_idx,
                last=True, payload_mode=payload_needed,
            )
            yield from chunks

    # ------------------------------------------------------------------
    # state manipulation (protocol-facing API)
    # ------------------------------------------------------------------
    @property
    def n_servers(self) -> int:
        return len(self.server_ids)

    def set_initial_allocation(
        self,
        allocation: IntArray,
        sticky_owner: Optional[IntArray] = None,
    ) -> None:
        """Load the initial caches from a binary allocation matrix.

        *allocation* has shape ``(n_items, n_servers)`` with columns in
        ``self.server_ids`` order; *sticky_owner*, when given, maps each
        item to the server node id holding its never-evicted replica (that
        server must hold the item in *allocation*).
        """
        if self._initialized:
            raise SimulationError("initial allocation already set")
        allocation = np.asarray(allocation)
        expected = (self.config.n_items, self.n_servers)
        if allocation.shape != expected:
            raise ConfigurationError(
                f"allocation shape {allocation.shape} != {expected}"
            )
        if not np.isin(allocation, (0, 1)).all():
            raise ConfigurationError("allocation must be binary")
        if np.any(allocation.sum(axis=0) > self.config.rho):
            raise ConfigurationError("allocation overfills a server cache")
        if sticky_owner is not None:
            sticky_owner = np.asarray(sticky_owner, dtype=np.int64)
            if sticky_owner.shape != (self.config.n_items,):
                raise ConfigurationError(
                    "sticky_owner must map every item to a server"
                )
            for item, owner in enumerate(sticky_owner):
                pos = self.server_position.get(int(owner))
                if pos is None or not allocation[item, pos]:
                    raise ConfigurationError(
                        f"sticky owner of item {item} does not hold a copy"
                    )
        # Pin sticky items first so pinning cannot hit a full cache.
        if sticky_owner is not None:
            for item, owner in enumerate(sticky_owner):
                cache = self.nodes[int(owner)].cache
                assert cache is not None
                cache.pin(item)
        for pos, node_id in enumerate(self.server_ids):
            cache = self.nodes[int(node_id)].cache
            assert cache is not None
            for item in np.where(allocation[:, pos])[0]:
                cache.add(int(item))
        self.counts = allocation.sum(axis=1).astype(np.int64)
        for pos, node_id in enumerate(self.server_ids):
            self.occupancy[int(node_id)] = allocation[:, pos] != 0
        self.sticky_owner = sticky_owner
        self._initialized = True
        if self.tracer is not None:
            self.tracer.emit(
                trace_events.ALLOC,
                self._now,
                counts=[int(c) for c in self.counts],
            )

    def insert_copy(self, node: NodeState, item: int) -> bool:
        """Insert a replica of *item* at *node*, evicting randomly.

        Returns True when the cache now holds a new copy of *item*;
        False when the node is not a server, already holds it, or every
        slot is pinned.  Replica accounting is updated for both the
        insertion and any eviction.
        """
        cache = node.cache
        if cache is None or item in cache:
            return False
        before = len(cache)
        victim = cache.insert(item, self.rng)
        if item not in cache:
            return False  # refused: all slots sticky
        self.counts[item] += 1
        occupancy_row = self.occupancy[node.node_id]
        occupancy_row[item] = True
        if victim is not None:
            self.counts[victim] -= 1
            occupancy_row[victim] = False
        elif len(cache) == before:  # pragma: no cover - defensive
            raise SimulationError("cache bookkeeping out of sync")
        if self._m_replica_add is not None:
            self._m_replica_add.inc()
            if victim is not None:
                assert self._m_replica_drop is not None
                self._m_replica_drop.inc()
        if self.tracer is not None:
            self.tracer.emit(
                trace_events.REPLICA_ADD,
                self._now,
                node=node.node_id,
                item=int(item),
                evicted=None if victim is None else int(victim),
            )
        return True

    def remove_copy(self, node: NodeState, item: int) -> bool:
        """Remove a (non-sticky) replica, keeping the counts consistent.

        Not used by any protocol; exposed for failure-injection
        experiments and tests.
        """
        cache = node.cache
        if cache is None or not cache.discard(item):
            return False
        self.counts[item] -= 1
        self.occupancy[node.node_id, item] = False
        if self._m_replica_drop is not None:
            self._m_replica_drop.inc()
        if self.tracer is not None:
            self.tracer.emit(
                trace_events.REPLICA_DROP,
                self._now,
                node=node.node_id,
                item=int(item),
            )
        return True

    def sticky_node_of(self, item: int) -> int:
        """Node id of the item's sticky replica, or ``-1`` if none."""
        if self.sticky_owner is None:
            return -1
        return int(self.sticky_owner[item])

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Process all events and return the collected metrics."""
        timer = Stopwatch() if self._collect_manifest else None
        phases = self._phase_timer
        # Loop specialization instead of per-event branching: untraced
        # fault-free runs take the fully inlined plain loop (no tracer,
        # online, or drop-probability tests at all), untraced runs with
        # fault injection add exactly those tests back, and traced runs
        # use the _traced_* handler duplicates.  All three consume the
        # same pre-chunked event stream, so snapshot instants and event
        # order are identical by construction.
        if phases is None:
            self._run_dispatch()
            n_unfulfilled = self._settle_unfulfilled()
        else:
            with phases.section("run"):
                self._run_dispatch()
            with phases.section("settle"):
                n_unfulfilled = self._settle_unfulfilled()
        manifest = None
        if timer is not None:
            timer.stop()
            assert phases is not None  # created together in __init__
            manifest = RunManifest(
                config_fingerprint=self.config.fingerprint(),
                seed=self._seed_value,
                protocol=self.protocol.name,
                wall_s=timer.wall,
                cpu_s=timer.cpu,
                n_events=self._n_events,
                phases=dict(phases.sections),
                metrics=self._metrics_snapshot(n_unfulfilled),
            ).to_dict()
        if self._metrics_reg is not None:
            self._publish_run_metrics(n_unfulfilled, timer)
        result = self.metrics.build_result(
            self.counts, n_unfulfilled, manifest=manifest
        )
        if self.tracer is not None:
            summary = {
                key: (value if math.isfinite(value) else None)
                for key, value in result.summary().items()
            }
            self.tracer.emit(
                trace_events.RUN_END, self.trace.duration, summary=summary
            )
            self.tracer.flush()
        return result

    def _run_dispatch(self) -> None:
        """Select and run the specialized loop for this (tracing, faults)."""
        if self.tracer is not None:
            self._run_traced()
        elif self.faults is None:
            self._run_plain()
        else:
            self._run_with_faults()

    def _metrics_snapshot(self, n_unfulfilled: int) -> Dict[str, object]:
        """The manifest's embedded metrics snapshot (counters only).

        Always built from the :class:`MetricsCollector` aggregates when
        a manifest is collected — present whether or not the process
        registry is enabled, so every manifest answers "how much work
        did this run do" without a metrics-enabled rerun.
        """
        m = self.metrics
        return {
            "n_events": self._n_events,
            "n_generated": m.n_generated,
            "n_fulfilled": m.n_fulfilled,
            "n_immediate": m.n_immediate,
            "n_skipped_self": m.n_skipped_self,
            "n_expired": m.n_expired,
            "n_unfulfilled": n_unfulfilled,
            "total_gain": m.total_gain,
            "final_replicas": int(self.counts.sum()),
            "n_crashes": m.n_crashes,
            "n_recoveries": m.n_recoveries,
            "n_replicas_lost": m.n_replicas_lost,
            "n_contacts_blocked": m.n_contacts_blocked,
            "n_contacts_dropped": m.n_contacts_dropped,
        }

    def _publish_run_metrics(
        self, n_unfulfilled: int, timer: Optional[Stopwatch]
    ) -> None:
        """Push end-of-run aggregates into the process registry.

        One batch of counter increments per *run* (never per event):
        the hot loops stay untouched, and a sweep process accumulates
        fleet-wide totals across all its runs.
        """
        reg = self._metrics_reg
        assert reg is not None
        m = self.metrics
        labels = {"protocol": self.protocol.name}
        reg.counter(
            "repro_sim_runs_total",
            help="simulation runs completed",
            labels=labels,
        ).inc()
        reg.counter(
            "repro_sim_events_total",
            help="merged events processed",
            labels=labels,
        ).inc(float(self._n_events))
        reg.counter(
            "repro_sim_requests_total",
            help="requests generated",
            labels=labels,
        ).inc(float(m.n_generated))
        reg.counter(
            "repro_sim_fulfillments_total",
            help="requests fulfilled via a contact",
            labels=labels,
        ).inc(float(m.n_fulfilled))
        reg.counter(
            "repro_sim_immediate_fulfillments_total",
            help="requests fulfilled from the requester's own cache",
            labels=labels,
        ).inc(float(m.n_immediate))
        reg.counter(
            "repro_sim_abandonments_total",
            help="requests expired by the request timeout",
            labels=labels,
        ).inc(float(m.n_expired))
        reg.counter(
            "repro_sim_unfulfilled_total",
            help="requests still outstanding at the horizon",
            labels=labels,
        ).inc(float(n_unfulfilled))
        reg.gauge(
            "repro_sim_final_replicas",
            help="total replicas at the end of the latest run",
            labels=labels,
        ).set(float(self.counts.sum()))
        if timer is not None:
            reg.histogram(
                "repro_sim_run_wall_seconds",
                help="wall seconds per simulation run",
                labels=labels,
            ).observe(timer.wall)

    # ------------------------------------------------------------------
    # traced handlers (selected in run() when tracing is on)
    #
    # These duplicate the bare handlers below plus emission sites, so
    # the untraced hot path carries no tracer loads or is-None tests at
    # all.  Keep both copies in sync: the tracing-equivalence tests in
    # tests/sim/test_tracing.py assert traced and untraced runs produce
    # bit-identical results.
    # ------------------------------------------------------------------
    def _traced_request(self, t: float, item: int, node_id: int) -> None:
        self._now = t
        tracer = self.tracer
        assert tracer is not None  # selected only when tracing is active
        node = self.nodes[node_id]
        if not node.online:
            # The device is down; its user generates no request.
            self.metrics.n_requests_offline += 1
            tracer.emit(trace_events.OFFLINE, t, item=item, node=node_id)
            return
        self.metrics.record_generated()
        if node.is_server and node.cache is not None and item in node.cache:
            if self._skip_self:
                self.metrics.record_skipped_self()
                tracer.emit(trace_events.SKIPPED, t, item=item, node=node_id)
                return
            h0 = self._h0
            if not math.isfinite(h0):
                raise SimulationError(
                    f"{self.config.utility.name} has h(0+) = inf and node "
                    f"{node_id} requested item {item} it already caches; "
                    "use self_request_policy='skip' or a dedicated-node "
                    "scenario"
                )
            self.metrics.record_fulfillment(t, 0.0, h0, immediate=True)
            tracer.emit(
                trace_events.IMMEDIATE, t, item=item, node=node_id, gain=h0
            )
            return
        node.add_request(Request(item, node_id, t))
        tracer.emit(trace_events.REQUEST, t, item=item, node=node_id)

    def _traced_contact(self, t: float, a: int, b: int) -> None:
        self._now = t
        nodes = self.nodes
        node_a = nodes[a]
        node_b = nodes[b]
        if not (node_a.online and node_b.online):
            self.metrics.n_contacts_blocked += 1
            return
        if self._drop_prob > 0.0 and self._fault_rng is not None:
            if self._fault_rng.random() < self._drop_prob:
                self.metrics.n_contacts_dropped += 1
                assert self.tracer is not None
                self.tracer.emit(trace_events.CONTACT_DROP, t, a=a, b=b)
                return
        if (
            self._hook_free_contact
            and not node_a.outstanding
            and not node_b.outstanding
        ):
            # Nothing to query in either direction and the protocol has
            # no contact hook: the meeting is a no-op.
            return
        self._traced_exchange(t, node_a, node_b)
        self._traced_exchange(t, node_b, node_a)
        if not self._hook_free_contact:
            self.protocol.after_contact(self, t, node_a, node_b)

    def _traced_exchange(
        self, t: float, requester: NodeState, provider: NodeState
    ) -> None:
        if not provider.is_server:
            return
        outstanding = requester.outstanding
        if not outstanding:
            return
        timeout = self._timeout
        if timeout is not None:
            self._traced_expire(requester, t - timeout)
            if not outstanding:
                return
        provider_cache = provider.cache  # non-None: provider is a server
        tracer = self.tracer
        assert tracer is not None
        fulfilled = None
        for item, request_list in outstanding.items():
            for request in request_list:
                request.counter += 1
            # One SEEN event per (item, requester) query edge — the
            # Lemma-1 meeting process — covering all n same-item
            # requests at this node.
            tracer.emit(
                trace_events.SEEN,
                t,
                item=item,
                node=requester.node_id,
                server=provider.node_id,
                n=len(request_list),
            )
            if item in provider_cache:
                if fulfilled is None:
                    fulfilled = [item]
                else:
                    fulfilled.append(item)
        if fulfilled is None:
            return
        utility = self._utility
        h0 = self._h0
        isfinite = math.isfinite
        record_fulfillment = self.metrics.record_fulfillment
        notify = not self._hook_free_fulfill
        on_fulfill = self.protocol.on_fulfill
        for item in fulfilled:
            for request in outstanding.pop(item):
                delay = t - request.created_at
                gain = float(utility(delay)) if delay > 0 else h0
                if not isfinite(gain):
                    # Measure-zero tie between a request and a contact at
                    # the same instant under an unbounded utility.
                    gain = 0.0
                record_fulfillment(t, delay, gain)
                tracer.emit(
                    trace_events.FULFILL,
                    t,
                    item=item,
                    node=requester.node_id,
                    server=provider.node_id,
                    delay=delay,
                    gain=gain,
                    counter=request.counter,
                )
                if notify:
                    on_fulfill(
                        self, t, requester, provider, item, request.counter
                    )

    def _traced_expire(self, node: NodeState, deadline: float) -> None:
        abandoned_gain = self._abandoned_gain
        credit = self._credit_abandoned
        stale_items = None
        for item, request_list in node.outstanding.items():
            if any(r.created_at < deadline for r in request_list):
                if stale_items is None:
                    stale_items = [item]
                else:
                    stale_items.append(item)
        if stale_items is None:
            return
        tracer = self.tracer
        assert tracer is not None
        for item in stale_items:
            request_list = node.outstanding[item]
            kept = [r for r in request_list if r.created_at >= deadline]
            expired = len(request_list) - len(kept)
            if credit:
                for _ in range(expired):
                    self.metrics.record_abandonment(deadline, abandoned_gain)
            self.metrics.n_expired += expired
            for request in request_list:
                if request.created_at < deadline:
                    tracer.emit(
                        trace_events.ABANDON,
                        deadline,
                        item=item,
                        node=node.node_id,
                        created_at=request.created_at,
                    )
            if kept:
                node.outstanding[item] = kept
            else:
                del node.outstanding[item]

    def _traced_fault(self, t: float, event: FaultEvent) -> None:
        self._now = t
        self._apply_fault(t, event)

    # ------------------------------------------------------------------
    # specialized event loops
    #
    # Three copies of the event loop over the pre-chunked stream, one
    # per (tracing, faults) mode.  The plain loop inlines request
    # bookkeeping and skips exchange calls whose early-return guards
    # (non-server provider, empty outstanding table) are visible from
    # the flat state tables — those guards touch no state and no RNG,
    # so eliding the call is bit-identical.  Keep the copies in sync:
    # the equivalence tests in tests/sim/ compare all of them against
    # sim/_reference.py.
    # ------------------------------------------------------------------
    def _run_plain(self) -> None:
        """Untraced, fault-free: every node is permanently online.

        Consumes the widened columnar layout: contacts carry each
        endpoint's precomputed inclusive server-meeting count (``-1``
        when that direction's provider is not a server), requests carry
        the node's count at creation (stashed in ``Request.counter``
        and turned into the final query counter by subtraction at
        fulfillment — see ``_fulfill_hits``).  Fully hook-free
        protocols on large node sets take the vectorized masked loop;
        everything else takes a specialized segmented per-index loop.
        The segmented loops precompute each chunk's request positions,
        so the inner contact runs carry no per-event kind test and
        read the time and payload columns only when a direction can
        actually matter.  Keep the loop copies in sync: they differ
        only in hook dispatch.
        """
        if self._hook_free_contact:
            if self._hook_free_fulfill and len(self.nodes) >= _MASK_MIN_NODES:
                self._run_plain_masked()
            else:
                self._run_plain_nohook()
        elif self._contact_hook_idle and bool(
            getattr(self.protocol, "mandates_touch_only_hook_nodes", False)
        ):
            self._run_plain_counted()
        else:
            self._run_plain_generic()

    def _run_plain_counted(self) -> None:
        """Segmented plain loop with mandate-presence counting.

        For protocols promising both an idle mandate-free contact hook
        and hook mutations confined to the hook's own nodes
        (``mandates_touch_only_hook_nodes``, the QCR family), a running
        count of mandate-holding nodes replaces the per-contact mandate
        table reads: while the count is zero and neither endpoint has
        outstanding requests — QCR's common steady state — the contact
        provably touches no state at all and the loop skips it without
        further reads.  The count is re-derived from the two endpoint
        entries around every call that may mutate them, so it stays
        exact.
        """
        nodes = self.nodes
        outstanding_tbl = self._outstanding_tbl
        cache_tbl = self._cache_tbl
        mandates_tbl = self._mandates_tbl
        metrics = self.metrics
        record_fulfillment = metrics.record_fulfillment
        fulfill_hits = self._fulfill_hits
        fulfill_direction = self._fulfill_direction
        mand_count = sum(1 for mand in mandates_tbl if mand)
        after_contact = self.protocol.after_contact
        skip_self = self._skip_self
        h0 = self._h0
        h0_finite = self._h0_finite
        no_timeout = self._timeout is None
        x_always = self._all_servers
        # Single-item step-utility fulfills — the dominant fulfill shape
        # — are inlined below with ``record_fulfillment``'s exact
        # statement order; everything else routes through
        # ``_fulfill_hits``.
        step_tau = self._step_tau
        step_fast = step_tau is not None
        tie_gain = h0 if h0_finite else 0.0
        delays_append = metrics.delays.append
        window_gains = metrics.window_gains
        window_fulfillments = metrics.window_fulfillments
        window_length = metrics.window_length
        last_window = len(window_gains) - 1
        notify = not self._hook_free_fulfill
        on_fulfill = self.protocol.on_fulfill
        # sole_tbl[u] is the node's single outstanding item id, or -1
        # when it has zero or several: one list load replaces the
        # ``len(out) == 1`` probe plus key-iterator on every
        # guard-passing contact.  Every outstanding-dict mutation below
        # keeps it exact (protocol hooks never touch outstanding).
        sole_tbl = [
            next(iter(out)) if len(out) == 1 else -1
            for out in outstanding_tbl
        ]
        for kinds_b, times_b, arg_a, arg_b, px, py, req_pos, snap in (
            self._iter_chunks()
        ):
            n = len(kinds_b)
            assert px is not None and py is not None and req_pos is not None
            mt = memoryview(times_b)
            ma = memoryview(arg_a)
            mb = memoryview(arg_b)
            mx = memoryview(px)
            my = memoryview(py)
            seg = 0
            for rp in (*req_pos, n):
                for p in range(seg, rp):
                    # A contact: skip without further reads unless an
                    # endpoint has outstanding requests or any node
                    # holds mandates.
                    a = ma[p]
                    b = mb[p]
                    out_a = outstanding_tbl[a]
                    out_b = outstanding_tbl[b]
                    if out_a or out_b or mand_count:
                        if mand_count:
                            pre = (1 if mandates_tbl[a] else 0) + (
                                1 if mandates_tbl[b] else 0
                            )
                        else:
                            pre = 0
                        hit = False
                        if out_a and (x_always or mx[p] >= 0):
                            if not no_timeout:
                                hit = True
                                fulfill_direction(mt[p], a, b, mx[p])
                                if len(out_a) == 1:
                                    for item in out_a:
                                        break
                                    sole_tbl[a] = item
                                else:
                                    sole_tbl[a] = -1
                            else:
                                item = sole_tbl[a]
                                if item >= 0:
                                    if item in cache_tbl[b]:
                                        hit = True
                                        sole_tbl[a] = -1
                                        if step_fast:
                                            t_ev = mt[p]
                                            meet = mx[p]
                                            window = min(
                                                int(t_ev / window_length),
                                                last_window,
                                            )
                                            for request in out_a.pop(item):
                                                delay = (
                                                    t_ev - request.created_at
                                                )
                                                if delay > 0:
                                                    gain = (
                                                        1.0
                                                        if delay <= step_tau
                                                        else 0.0
                                                    )
                                                else:
                                                    gain = tie_gain
                                                metrics.total_gain += gain
                                                metrics.n_fulfilled += 1
                                                delays_append(delay)
                                                window_gains[window] += gain
                                                window_fulfillments[
                                                    window
                                                ] += 1
                                                if notify:
                                                    on_fulfill(
                                                        self,
                                                        t_ev,
                                                        nodes[a],
                                                        nodes[b],
                                                        item,
                                                        meet
                                                        - request.counter,
                                                    )
                                        else:
                                            fulfill_hits(
                                                mt[p], a, b, mx[p],
                                                out_a, (item,),
                                            )
                                else:
                                    hits = out_a.keys() & cache_tbl[b]
                                    if hits:
                                        hit = True
                                        fulfill_hits(
                                            mt[p], a, b, mx[p], out_a, hits
                                        )
                                        if len(out_a) == 1:
                                            for item in out_a:
                                                break
                                            sole_tbl[a] = item
                        if out_b and (x_always or my[p] >= 0):
                            if not no_timeout:
                                hit = True
                                fulfill_direction(mt[p], b, a, my[p])
                                if len(out_b) == 1:
                                    for item in out_b:
                                        break
                                    sole_tbl[b] = item
                                else:
                                    sole_tbl[b] = -1
                            else:
                                item = sole_tbl[b]
                                if item >= 0:
                                    if item in cache_tbl[a]:
                                        hit = True
                                        sole_tbl[b] = -1
                                        if step_fast:
                                            t_ev = mt[p]
                                            meet = my[p]
                                            window = min(
                                                int(t_ev / window_length),
                                                last_window,
                                            )
                                            for request in out_b.pop(item):
                                                delay = (
                                                    t_ev - request.created_at
                                                )
                                                if delay > 0:
                                                    gain = (
                                                        1.0
                                                        if delay <= step_tau
                                                        else 0.0
                                                    )
                                                else:
                                                    gain = tie_gain
                                                metrics.total_gain += gain
                                                metrics.n_fulfilled += 1
                                                delays_append(delay)
                                                window_gains[window] += gain
                                                window_fulfillments[
                                                    window
                                                ] += 1
                                                if notify:
                                                    on_fulfill(
                                                        self,
                                                        t_ev,
                                                        nodes[b],
                                                        nodes[a],
                                                        item,
                                                        meet
                                                        - request.counter,
                                                    )
                                        else:
                                            fulfill_hits(
                                                mt[p], b, a, my[p],
                                                out_b, (item,),
                                            )
                                else:
                                    hits = out_b.keys() & cache_tbl[a]
                                    if hits:
                                        hit = True
                                        fulfill_hits(
                                            mt[p], b, a, my[p], out_b, hits
                                        )
                                        if len(out_b) == 1:
                                            for item in out_b:
                                                break
                                            sole_tbl[b] = item
                        if hit or pre:
                            if mandates_tbl[a] or mandates_tbl[b]:
                                after_contact(
                                    self, mt[p], nodes[a], nodes[b]
                                )
                            mand_count += (
                                (1 if mandates_tbl[a] else 0)
                                + (1 if mandates_tbl[b] else 0)
                                - pre
                            )
                if rp < n:  # the request splitting this segment
                    item = ma[rp]
                    node_id = mb[rp]
                    metrics.n_generated += 1
                    if item in cache_tbl[node_id]:
                        if skip_self:
                            metrics.n_skipped_self += 1
                        elif h0_finite:
                            record_fulfillment(
                                mt[rp], 0.0, h0, immediate=True
                            )
                        else:
                            self._raise_infinite_h0(item, node_id)
                    else:
                        out = outstanding_tbl[node_id]
                        request_list = out.get(item)
                        if request_list is None:
                            out[item] = [
                                Request(item, node_id, mt[rp], mx[rp])
                            ]
                            sole_tbl[node_id] = (
                                item if len(out) == 1 else -1
                            )
                        else:
                            request_list.append(
                                Request(item, node_id, mt[rp], mx[rp])
                            )
                seg = rp + 1
            if snap is not None:
                self._take_snapshot(snap)

    def _run_plain_nohook(self) -> None:
        """Segmented plain loop, no contact hook (static protocols)."""
        nodes = self.nodes
        outstanding_tbl = self._outstanding_tbl
        cache_tbl = self._cache_tbl
        metrics = self.metrics
        record_fulfillment = metrics.record_fulfillment
        fulfill_hits = self._fulfill_hits
        fulfill_direction = self._fulfill_direction
        skip_self = self._skip_self
        h0 = self._h0
        h0_finite = self._h0_finite
        no_timeout = self._timeout is None
        x_always = self._all_servers
        # Single-item step-utility fulfills — the dominant fulfill shape
        # — are inlined below with ``record_fulfillment``'s exact
        # statement order; everything else routes through
        # ``_fulfill_hits``.
        step_tau = self._step_tau
        step_fast = step_tau is not None
        tie_gain = h0 if h0_finite else 0.0
        delays_append = metrics.delays.append
        window_gains = metrics.window_gains
        window_fulfillments = metrics.window_fulfillments
        window_length = metrics.window_length
        last_window = len(window_gains) - 1
        notify = not self._hook_free_fulfill
        on_fulfill = self.protocol.on_fulfill
        # sole_tbl[u]: the single outstanding item id, or -1 when the
        # node has zero or several (see _run_plain_counted).
        sole_tbl = [
            next(iter(out)) if len(out) == 1 else -1
            for out in outstanding_tbl
        ]
        for kinds_b, times_b, arg_a, arg_b, px, py, req_pos, snap in (
            self._iter_chunks()
        ):
            n = len(kinds_b)
            assert px is not None and py is not None and req_pos is not None
            mt = memoryview(times_b)
            ma = memoryview(arg_a)
            mb = memoryview(arg_b)
            mx = memoryview(px)
            my = memoryview(py)
            seg = 0
            for rp in (*req_pos, n):
                for p in range(seg, rp):
                    a = ma[p]
                    b = mb[p]
                    out = outstanding_tbl[a]
                    if out and (x_always or mx[p] >= 0):
                        if not no_timeout:
                            fulfill_direction(mt[p], a, b, mx[p])
                            if len(out) == 1:
                                for item in out:
                                    break
                                sole_tbl[a] = item
                            else:
                                sole_tbl[a] = -1
                        else:
                            item = sole_tbl[a]
                            if item >= 0:
                                if item in cache_tbl[b]:
                                    sole_tbl[a] = -1
                                    if step_fast:
                                        t_ev = mt[p]
                                        meet = mx[p]
                                        window = min(
                                            int(t_ev / window_length),
                                            last_window,
                                        )
                                        for request in out.pop(item):
                                            delay = t_ev - request.created_at
                                            if delay > 0:
                                                gain = (
                                                    1.0
                                                    if delay <= step_tau
                                                    else 0.0
                                                )
                                            else:
                                                gain = tie_gain
                                            metrics.total_gain += gain
                                            metrics.n_fulfilled += 1
                                            delays_append(delay)
                                            window_gains[window] += gain
                                            window_fulfillments[window] += 1
                                            if notify:
                                                on_fulfill(
                                                    self,
                                                    t_ev,
                                                    nodes[a],
                                                    nodes[b],
                                                    item,
                                                    meet - request.counter,
                                                )
                                    else:
                                        fulfill_hits(
                                            mt[p], a, b, mx[p], out, (item,)
                                        )
                            else:
                                hits = out.keys() & cache_tbl[b]
                                if hits:
                                    fulfill_hits(
                                        mt[p], a, b, mx[p], out, hits
                                    )
                                    if len(out) == 1:
                                        for item in out:
                                            break
                                        sole_tbl[a] = item
                    out = outstanding_tbl[b]
                    if out and (x_always or my[p] >= 0):
                        if not no_timeout:
                            fulfill_direction(mt[p], b, a, my[p])
                            if len(out) == 1:
                                for item in out:
                                    break
                                sole_tbl[b] = item
                            else:
                                sole_tbl[b] = -1
                        else:
                            item = sole_tbl[b]
                            if item >= 0:
                                if item in cache_tbl[a]:
                                    sole_tbl[b] = -1
                                    if step_fast:
                                        t_ev = mt[p]
                                        meet = my[p]
                                        window = min(
                                            int(t_ev / window_length),
                                            last_window,
                                        )
                                        for request in out.pop(item):
                                            delay = t_ev - request.created_at
                                            if delay > 0:
                                                gain = (
                                                    1.0
                                                    if delay <= step_tau
                                                    else 0.0
                                                )
                                            else:
                                                gain = tie_gain
                                            metrics.total_gain += gain
                                            metrics.n_fulfilled += 1
                                            delays_append(delay)
                                            window_gains[window] += gain
                                            window_fulfillments[window] += 1
                                            if notify:
                                                on_fulfill(
                                                    self,
                                                    t_ev,
                                                    nodes[b],
                                                    nodes[a],
                                                    item,
                                                    meet - request.counter,
                                                )
                                    else:
                                        fulfill_hits(
                                            mt[p], b, a, my[p], out, (item,)
                                        )
                            else:
                                hits = out.keys() & cache_tbl[a]
                                if hits:
                                    fulfill_hits(
                                        mt[p], b, a, my[p], out, hits
                                    )
                                    if len(out) == 1:
                                        for item in out:
                                            break
                                        sole_tbl[b] = item
                if rp < n:  # the request splitting this segment
                    item = ma[rp]
                    node_id = mb[rp]
                    metrics.n_generated += 1
                    if item in cache_tbl[node_id]:
                        if skip_self:
                            metrics.n_skipped_self += 1
                        elif h0_finite:
                            record_fulfillment(
                                mt[rp], 0.0, h0, immediate=True
                            )
                        else:
                            self._raise_infinite_h0(item, node_id)
                    else:
                        out = outstanding_tbl[node_id]
                        request_list = out.get(item)
                        if request_list is None:
                            out[item] = [
                                Request(item, node_id, mt[rp], mx[rp])
                            ]
                            sole_tbl[node_id] = (
                                item if len(out) == 1 else -1
                            )
                        else:
                            request_list.append(
                                Request(item, node_id, mt[rp], mx[rp])
                            )
                seg = rp + 1
            if snap is not None:
                self._take_snapshot(snap)

    def _run_plain_generic(self) -> None:
        """Segmented plain loop, generic hook dispatch (fallback)."""
        nodes = self.nodes
        outstanding_tbl = self._outstanding_tbl
        cache_tbl = self._cache_tbl
        mandates_tbl = self._mandates_tbl
        metrics = self.metrics
        record_fulfillment = metrics.record_fulfillment
        fulfill_hits = self._fulfill_hits
        fulfill_direction = self._fulfill_direction
        idle_hook = self._contact_hook_idle
        after_contact = self.protocol.after_contact
        skip_self = self._skip_self
        h0 = self._h0
        h0_finite = self._h0_finite
        no_timeout = self._timeout is None
        x_always = self._all_servers
        for kinds_b, times_b, arg_a, arg_b, px, py, req_pos, snap in (
            self._iter_chunks()
        ):
            n = len(kinds_b)
            assert px is not None and py is not None and req_pos is not None
            mt = memoryview(times_b)
            ma = memoryview(arg_a)
            mb = memoryview(arg_b)
            mx = memoryview(px)
            my = memoryview(py)
            seg = 0
            for rp in (*req_pos, n):
                for p in range(seg, rp):
                    a = ma[p]
                    b = mb[p]
                    out = outstanding_tbl[a]
                    if out and (x_always or mx[p] >= 0):
                        if not no_timeout:
                            fulfill_direction(mt[p], a, b, mx[p])
                        elif len(out) == 1:
                            for item in out:
                                break
                            if item in cache_tbl[b]:
                                fulfill_hits(
                                    mt[p], a, b, mx[p], out, (item,)
                                )
                        else:
                            hits = out.keys() & cache_tbl[b]
                            if hits:
                                fulfill_hits(mt[p], a, b, mx[p], out, hits)
                    out = outstanding_tbl[b]
                    if out and (x_always or my[p] >= 0):
                        if not no_timeout:
                            fulfill_direction(mt[p], b, a, my[p])
                        elif len(out) == 1:
                            for item in out:
                                break
                            if item in cache_tbl[a]:
                                fulfill_hits(
                                    mt[p], b, a, my[p], out, (item,)
                                )
                        else:
                            hits = out.keys() & cache_tbl[a]
                            if hits:
                                fulfill_hits(mt[p], b, a, my[p], out, hits)
                    if not idle_hook or mandates_tbl[a] or mandates_tbl[b]:
                        after_contact(self, mt[p], nodes[a], nodes[b])
                if rp < n:  # the request splitting this segment
                    item = ma[rp]
                    node_id = mb[rp]
                    metrics.n_generated += 1
                    if item in cache_tbl[node_id]:
                        if skip_self:
                            metrics.n_skipped_self += 1
                        elif h0_finite:
                            record_fulfillment(
                                mt[rp], 0.0, h0, immediate=True
                            )
                        else:
                            self._raise_infinite_h0(item, node_id)
                    else:
                        out = outstanding_tbl[node_id]
                        request_list = out.get(item)
                        if request_list is None:
                            out[item] = [
                                Request(item, node_id, mt[rp], mx[rp])
                            ]
                        else:
                            request_list.append(
                                Request(item, node_id, mt[rp], mx[rp])
                            )
                seg = rp + 1
            if snap is not None:
                self._take_snapshot(snap)

    def _candidate_positions(
        self,
        active: npt.NDArray[np.bool_],
        first_req: IntArray,
        offsets: IntArray,
        kinds_b: IntArray,
        arg_a: IntArray,
        arg_b: IntArray,
        px: IntArray,
        py: IntArray,
        pos0: int,
        pos1: int,
    ) -> List[int]:
        """Global positions in ``[pos0, pos1)`` that can touch state.

        A contact is a candidate iff an endpoint was active (had
        outstanding requests) when the block started, or issued a
        request *earlier in the same block* — the latter resolved
        exactly per position via a first-request-position scatter, so
        a burst of requests does not smear activity across the whole
        block.  Requests are always candidates.  ``active`` may only
        err conservative (stale ``True`` after a mid-block
        fulfillment), so a skipped contact provably matches the dense
        loop's no-op.  ``first_req`` must arrive holding the sentinel
        everywhere and is restored before returning.
        """
        blk = pos1 - pos0
        kb = kinds_b[pos0:pos1]
        bb = arg_b[pos0:pos1]
        req_sel = kb == EVENT_REQUEST
        rpos = np.flatnonzero(req_sel)
        if len(rpos):
            # arg_a holds item ids on request rows — they may exceed
            # the node-id range, so blank them before gathering.
            ab = np.where(req_sel, 0, arg_a[pos0:pos1])
            req_nodes = bb[rpos]
            # Reversed scatter: earliest position wins on duplicates.
            first_req[req_nodes[::-1]] = rpos[::-1]
            cand = active[ab]
            cand |= active[bb]
            offs = offsets[:blk]
            cand |= first_req[ab] < offs
            cand |= first_req[bb] < offs
            first_req[req_nodes] = _MASK_BLOCK_EVENTS
        else:
            ab = arg_a[pos0:pos1]
            cand = active[ab]
            cand |= active[bb]
        if not self._all_servers:
            # Neither endpoint meets a server: provably a no-op
            # regardless of outstanding state.
            served = px[pos0:pos1] >= 0
            served |= py[pos0:pos1] >= 0
            cand &= served
        cand |= req_sel
        positions: List[int] = (np.flatnonzero(cand) + pos0).tolist()
        return positions

    def _run_plain_masked(self) -> None:
        """Vectorized plain loop for fully hook-free protocols.

        With default (no-op) contact and fulfill hooks a contact can
        only matter when an endpoint has outstanding requests and the
        opposite endpoint is a server — both visible columnarly.  Per
        sub-block, ``_candidate_positions`` selects exactly those
        contacts plus all requests; masked-out events are skipped
        without materializing a single per-event Python object.
        """
        outstanding_tbl = self._outstanding_tbl
        cache_tbl = self._cache_tbl
        metrics = self.metrics
        record_fulfillment = metrics.record_fulfillment
        fulfill_hits = self._fulfill_hits
        fulfill_direction = self._fulfill_direction
        candidate_positions = self._candidate_positions
        skip_self = self._skip_self
        h0 = self._h0
        h0_finite = self._h0_finite
        no_timeout = self._timeout is None
        x_always = self._all_servers
        # Hook-free implies no fulfill notification, so the single-item
        # step-utility fast path inlines ``record_fulfillment`` directly.
        step_tau = self._step_tau
        step_fast = step_tau is not None
        tie_gain = h0 if h0_finite else 0.0
        delays_append = metrics.delays.append
        window_gains = metrics.window_gains
        window_fulfillments = metrics.window_fulfillments
        window_length = metrics.window_length
        last_window = len(window_gains) - 1
        active = np.zeros(len(self.nodes), dtype=bool)
        for node_id, out in enumerate(outstanding_tbl):
            if out:
                active[node_id] = True
        block = _MASK_BLOCK_EVENTS
        first_req = np.full(len(self.nodes), block, dtype=np.int64)
        offsets = np.arange(block, dtype=np.int64)
        for kinds_b, times_b, arg_a, arg_b, px, py, _req_pos, snap in (
            self._iter_chunks()
        ):
            n = len(kinds_b)
            assert px is not None and py is not None
            mk = memoryview(kinds_b)
            mt = memoryview(times_b)
            ma = memoryview(arg_a)
            mb = memoryview(arg_b)
            mx = memoryview(px)
            my = memoryview(py)
            for pos0 in range(0, n, block):
                pos1 = min(pos0 + block, n)
                for gp in candidate_positions(
                    active, first_req, offsets,
                    kinds_b, arg_a, arg_b, px, py, pos0, pos1,
                ):
                    if mk[gp] == 2:  # EVENT_CONTACT
                        a = ma[gp]
                        b = mb[gp]
                        out = outstanding_tbl[a]
                        if out and (x_always or mx[gp] >= 0):
                            if not no_timeout:
                                fulfill_direction(mt[gp], a, b, mx[gp])
                            elif len(out) == 1:
                                for item in out:
                                    break
                                if item in cache_tbl[b]:
                                    if step_fast:
                                        t_ev = mt[gp]
                                        window = min(
                                            int(t_ev / window_length),
                                            last_window,
                                        )
                                        for request in out.pop(item):
                                            delay = (
                                                t_ev - request.created_at
                                            )
                                            if delay > 0:
                                                gain = (
                                                    1.0
                                                    if delay <= step_tau
                                                    else 0.0
                                                )
                                            else:
                                                gain = tie_gain
                                            metrics.total_gain += gain
                                            metrics.n_fulfilled += 1
                                            delays_append(delay)
                                            window_gains[window] += gain
                                            window_fulfillments[window] += 1
                                    else:
                                        fulfill_hits(
                                            mt[gp], a, b, mx[gp], out,
                                            (item,),
                                        )
                            else:
                                hits = out.keys() & cache_tbl[b]
                                if hits:
                                    fulfill_hits(
                                        mt[gp], a, b, mx[gp], out, hits
                                    )
                            if not out:
                                active[a] = False
                        out = outstanding_tbl[b]
                        if out and (x_always or my[gp] >= 0):
                            if not no_timeout:
                                fulfill_direction(mt[gp], b, a, my[gp])
                            elif len(out) == 1:
                                for item in out:
                                    break
                                if item in cache_tbl[a]:
                                    if step_fast:
                                        t_ev = mt[gp]
                                        window = min(
                                            int(t_ev / window_length),
                                            last_window,
                                        )
                                        for request in out.pop(item):
                                            delay = (
                                                t_ev - request.created_at
                                            )
                                            if delay > 0:
                                                gain = (
                                                    1.0
                                                    if delay <= step_tau
                                                    else 0.0
                                                )
                                            else:
                                                gain = tie_gain
                                            metrics.total_gain += gain
                                            metrics.n_fulfilled += 1
                                            delays_append(delay)
                                            window_gains[window] += gain
                                            window_fulfillments[window] += 1
                                    else:
                                        fulfill_hits(
                                            mt[gp], b, a, my[gp], out,
                                            (item,),
                                        )
                            else:
                                hits = out.keys() & cache_tbl[a]
                                if hits:
                                    fulfill_hits(
                                        mt[gp], b, a, my[gp], out, hits
                                    )
                            if not out:
                                active[b] = False
                    else:  # EVENT_REQUEST
                        item = ma[gp]
                        node_id = mb[gp]
                        metrics.n_generated += 1
                        if item in cache_tbl[node_id]:
                            if skip_self:
                                metrics.n_skipped_self += 1
                            elif h0_finite:
                                record_fulfillment(
                                    mt[gp], 0.0, h0, immediate=True
                                )
                            else:
                                self._raise_infinite_h0(item, node_id)
                        else:
                            out = outstanding_tbl[node_id]
                            request_list = out.get(item)
                            if request_list is None:
                                out[item] = [
                                    Request(item, node_id, mt[gp], mx[gp])
                                ]
                            else:
                                request_list.append(
                                    Request(item, node_id, mt[gp], mx[gp])
                                )
                            active[node_id] = True
            if snap is not None:
                self._take_snapshot(snap)

    def _run_with_faults(self) -> None:
        """Untraced with fault injection: online/drop tests restored.

        Blocked and dropped contacts must not advance query counters,
        so the per-node server-meeting counts are maintained here
        dynamically instead of precomputed from the trace.
        """
        nodes = self.nodes
        outstanding_tbl = self._outstanding_tbl
        cache_tbl = self._cache_tbl
        is_server_tbl = self._is_server_tbl
        mandates_tbl = self._mandates_tbl
        metrics = self.metrics
        record_fulfillment = metrics.record_fulfillment
        fulfill_direction = self._fulfill_direction
        hooked = not self._hook_free_contact
        idle_hook = self._contact_hook_idle
        after_contact = self.protocol.after_contact
        skip_self = self._skip_self
        h0 = self._h0
        h0_finite = self._h0_finite
        drop_prob = self._drop_prob
        fault_rng = self._fault_rng
        fault_events = self._fault_events
        meet_counts = [0] * len(nodes)
        for kinds_b, times_b, arg_a, arg_b, _px, _py, _rp, snap in (
            self._iter_chunks()
        ):
            mk = memoryview(kinds_b)
            mt = memoryview(times_b)
            ma = memoryview(arg_a)
            mb = memoryview(arg_b)
            for p in range(len(kinds_b)):
                kind = mk[p]
                if kind == 2:  # EVENT_CONTACT
                    a = ma[p]
                    b = mb[p]
                    node_a = nodes[a]
                    node_b = nodes[b]
                    if not (node_a.online and node_b.online):
                        metrics.n_contacts_blocked += 1
                        continue
                    t = mt[p]
                    if drop_prob > 0.0 and fault_rng is not None:
                        if fault_rng.random() < drop_prob:
                            metrics.n_contacts_dropped += 1
                            continue
                    if is_server_tbl[b]:
                        count = meet_counts[a] + 1
                        meet_counts[a] = count
                        if outstanding_tbl[a]:
                            fulfill_direction(t, a, b, count)
                    if is_server_tbl[a]:
                        count = meet_counts[b] + 1
                        meet_counts[b] = count
                        if outstanding_tbl[b]:
                            fulfill_direction(t, b, a, count)
                    if hooked and (
                        not idle_hook or mandates_tbl[a] or mandates_tbl[b]
                    ):
                        after_contact(self, t, node_a, node_b)
                elif kind == 1:  # EVENT_REQUEST: a = item, b = node
                    item = ma[p]
                    node_id = mb[p]
                    if not nodes[node_id].online:
                        # The device is down; no request is generated.
                        metrics.n_requests_offline += 1
                        continue
                    t = mt[p]
                    metrics.n_generated += 1
                    if item in cache_tbl[node_id]:
                        if skip_self:
                            metrics.n_skipped_self += 1
                        elif h0_finite:
                            record_fulfillment(t, 0.0, h0, immediate=True)
                        else:
                            self._raise_infinite_h0(item, node_id)
                    else:
                        out = outstanding_tbl[node_id]
                        request_list = out.get(item)
                        if request_list is None:
                            out[item] = [
                                Request(item, node_id, t, meet_counts[node_id])
                            ]
                        else:
                            request_list.append(
                                Request(item, node_id, t, meet_counts[node_id])
                            )
                else:  # EVENT_FAULT: arg_a = fault index
                    self._apply_fault(mt[p], fault_events[ma[p]])
            if snap is not None:
                self._take_snapshot(snap)

    def _run_traced(self) -> None:
        """Traced: per-event handlers that interleave emission."""
        fault_events = self._fault_events
        handle_contact = self._traced_contact
        handle_request = self._traced_request
        handle_fault = self._traced_fault
        for kinds_b, times_b, arg_a, arg_b, _px, _py, _rp, snap in (
            self._iter_chunks()
        ):
            mk = memoryview(kinds_b)
            mt = memoryview(times_b)
            ma = memoryview(arg_a)
            mb = memoryview(arg_b)
            for p in range(len(kinds_b)):
                kind = mk[p]
                if kind == EVENT_CONTACT:
                    handle_contact(mt[p], ma[p], mb[p])
                elif kind == EVENT_REQUEST:
                    handle_request(mt[p], ma[p], mb[p])
                else:
                    handle_fault(mt[p], fault_events[ma[p]])
            if snap is not None:
                self._take_snapshot(snap)

    def _raise_infinite_h0(self, item: int, node_id: int) -> None:
        raise SimulationError(
            f"{self.config.utility.name} has h(0+) = inf and node "
            f"{node_id} requested item {item} it already caches; "
            "use self_request_policy='skip' or a dedicated-node "
            "scenario"
        )

    def _fulfill_direction(
        self, t: float, requester_id: int, provider_id: int, meet_count: int
    ) -> None:
        """One direction of the metadata exchange: expire, query, fulfill.

        *meet_count* is the requester's server-meeting count including
        this contact; a pending request's final query counter is
        ``meet_count - request.counter`` (its count at creation).
        """
        outstanding = self._outstanding_tbl[requester_id]
        timeout = self._timeout
        if timeout is not None:
            self._expire_requests(self.nodes[requester_id], t - timeout)
            if not outstanding:
                return
        hits = outstanding.keys() & self._cache_tbl[provider_id]
        if hits:
            self._fulfill_hits(
                t, requester_id, provider_id, meet_count, outstanding, hits
            )

    def _fulfill_hits(
        self,
        t: float,
        requester_id: int,
        provider_id: int,
        meet_count: int,
        outstanding: Dict[int, List[Request]],
        hits: Collection[int],
    ) -> None:
        """Fulfill the *hits* items, in the requester's insertion order.

        *hits* is any collection supporting ``len`` and membership —
        the hot loops pass a one-element tuple when the requester has a
        single outstanding item, sparing the set intersection.
        """
        if len(hits) < len(outstanding):
            fulfilled = [item for item in outstanding if item in hits]
        else:
            fulfilled = list(outstanding)
        metrics = self.metrics
        notify = not self._hook_free_fulfill
        on_fulfill = self.protocol.on_fulfill
        requester = self.nodes[requester_id]
        provider = self.nodes[provider_id]
        pop = outstanding.pop
        step_tau = self._step_tau
        if step_tau is not None:
            # Step utility: the gain is a bare comparison (always 0 or
            # 1, so provably finite) and the metrics update is inlined
            # in ``record_fulfillment``'s exact statement order.  The
            # window index depends only on *t*, so it is computed once.
            tie_gain = self._h0 if self._h0_finite else 0.0
            delays_append = metrics.delays.append
            window_gains = metrics.window_gains
            window_fulfillments = metrics.window_fulfillments
            window = min(
                int(t / metrics.window_length), len(window_gains) - 1
            )
            for item in fulfilled:
                for request in pop(item):
                    delay = t - request.created_at
                    if delay > 0:
                        gain = 1.0 if delay <= step_tau else 0.0
                    else:
                        # Measure-zero tie between a request and a
                        # contact at the same instant.
                        gain = tie_gain
                    metrics.total_gain += gain
                    metrics.n_fulfilled += 1
                    delays_append(delay)
                    window_gains[window] += gain
                    window_fulfillments[window] += 1
                    if notify:
                        on_fulfill(
                            self,
                            t,
                            requester,
                            provider,
                            item,
                            meet_count - request.counter,
                        )
            return
        utility = self._utility
        h0 = self._h0
        isfinite = math.isfinite
        record_fulfillment = metrics.record_fulfillment
        for item in fulfilled:
            for request in pop(item):
                delay = t - request.created_at
                gain = float(utility(delay)) if delay > 0 else h0
                if not isfinite(gain):
                    # Measure-zero tie between a request and a contact at
                    # the same instant under an unbounded utility.
                    gain = 0.0
                record_fulfillment(t, delay, gain)
                if notify:
                    on_fulfill(
                        self,
                        t,
                        requester,
                        provider,
                        item,
                        meet_count - request.counter,
                    )

    def _expire_requests(self, node: NodeState, deadline: float) -> None:
        """Drop outstanding requests created before *deadline*."""
        abandoned_gain = self._abandoned_gain
        credit = self._credit_abandoned
        stale_items = None
        for item, request_list in node.outstanding.items():
            if any(r.created_at < deadline for r in request_list):
                if stale_items is None:
                    stale_items = [item]
                else:
                    stale_items.append(item)
        if stale_items is None:
            return
        for item in stale_items:
            request_list = node.outstanding[item]
            kept = [r for r in request_list if r.created_at >= deadline]
            expired = len(request_list) - len(kept)
            if credit:
                for _ in range(expired):
                    self.metrics.record_abandonment(deadline, abandoned_gain)
            self.metrics.n_expired += expired
            if kept:
                node.outstanding[item] = kept
            else:
                del node.outstanding[item]

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def _apply_fault(self, t: float, event: FaultEvent) -> None:
        if event.kind == "crash":
            self._crash_node(t, event)
        elif event.kind == "recover":
            self._recover_node(t, event)
        else:  # "replica_loss"
            self._lose_replica(t, event)

    def _crash_node(self, t: float, event: FaultEvent) -> None:
        node = self.nodes[event.node]  # type: ignore[index]
        if not node.online:
            return  # already down; crash is idempotent
        node.online = False
        self.metrics.record_crash(t, node.node_id)
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                trace_events.CRASH,
                t,
                node=node.node_id,
                n_requests_lost=(
                    node.n_outstanding() if node.outstanding else 0
                ),
                n_mandates_lost=(
                    sum(node.mandates.values())
                    if event.lose_mandates and node.mandates
                    else 0
                ),
            )
            for item, request_list in node.outstanding.items():
                for request in request_list:
                    tracer.emit(
                        trace_events.LOST,
                        t,
                        item=item,
                        node=node.node_id,
                        created_at=request.created_at,
                    )
        if node.outstanding:
            self.metrics.n_requests_lost += node.n_outstanding()
            node.outstanding.clear()
        if event.lose_mandates and node.mandates:
            self.metrics.n_mandates_lost += sum(node.mandates.values())
            node.mandates.clear()
        if event.wipe_cache and node.cache is not None and len(node.cache):
            assert self.faults is not None
            count_before = int(self.counts.sum())
            cache = node.cache
            lost = 0
            if not self.faults.sticky_survives and cache.sticky is not None:
                item = cache.unpin()
                if item is not None and self.sticky_owner is not None:
                    # The network-wide no-extinction guarantee is gone
                    # for this item; mandate routing stops favoring the
                    # (now nonexistent) sticky node.
                    self.sticky_owner[item] = -1
            for item in sorted(cache.items()):
                if self.remove_copy(node, item):
                    lost += 1
            self.metrics.record_replica_loss(t, lost, count_before)

    def _recover_node(self, t: float, event: FaultEvent) -> None:
        node = self.nodes[event.node]  # type: ignore[index]
        if node.online:
            return
        node.online = True
        self.metrics.record_recovery(t, node.node_id)
        if self.tracer is not None:
            self.tracer.emit(trace_events.RECOVER, t, node=node.node_id)

    def _lose_replica(self, t: float, event: FaultEvent) -> None:
        count_before = int(self.counts.sum())
        if event.node is not None:
            node = self.nodes[event.node]
            item = event.item
            if item is None:
                item = self._pick_lossy_item(node)
                if item is None:
                    return
            if self.remove_copy(node, item):
                self.metrics.record_replica_loss(t, 1, count_before)
            return
        # Unresolved loss: destroy a uniformly random non-sticky
        # replica anywhere in the network (schedule RNG, sorted
        # candidate order — fully deterministic per schedule seed).
        rng = self._fault_rng
        assert rng is not None
        candidates = [
            (node, item)
            for node in self.nodes
            if node.cache is not None
            for item in sorted(node.cache.items())
            if item != node.cache.sticky
        ]
        if not candidates:
            return
        node, item = candidates[int(rng.integers(len(candidates)))]
        if self.remove_copy(node, item):
            self.metrics.record_replica_loss(t, 1, count_before)

    def _pick_lossy_item(self, node: NodeState) -> Optional[int]:
        """A random non-sticky cached item of *node*, or ``None``."""
        cache = node.cache
        if cache is None:
            return None
        rng = self._fault_rng
        assert rng is not None
        pool = [i for i in sorted(cache.items()) if i != cache.sticky]
        if not pool:
            return None
        return pool[int(rng.integers(len(pool)))]

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _take_snapshot(self, t: float) -> None:
        mandates = self.protocol.mandate_totals(self)
        self.metrics.record_snapshot(t, self.counts, mandates)

    def _settle_unfulfilled(self) -> int:
        """Apply the end-of-horizon policy to outstanding requests."""
        utility = self.config.utility
        horizon = self.trace.duration
        truncate = self.config.unfulfilled_policy == "truncate"
        tracer = self.tracer
        n_unfulfilled = 0
        # Outstanding requests can only live on nodes that issued one,
        # so settle visits those — not every node, which at million-node
        # scale costs more than the whole streamed run loop.
        for node_id in np.unique(self._req_nodes):
            node = self.nodes[node_id]
            for item, request_list in node.outstanding.items():
                for request in request_list:
                    n_unfulfilled += 1
                    if tracer is not None:
                        tracer.emit(
                            trace_events.UNFULFILLED,
                            horizon,
                            item=item,
                            node=node.node_id,
                            created_at=request.created_at,
                            age=horizon - request.created_at,
                        )
                    if truncate:
                        age = horizon - request.created_at
                        if age > 0:
                            gain = float(utility(age))
                            if math.isfinite(gain):
                                self.metrics.record_end_of_run_gain(gain)
        return n_unfulfilled


def simulate(
    trace: ContactTrace,
    requests: RequestSchedule,
    config: SimulationConfig,
    protocol: ReplicationProtocol,
    seed: SeedLike = None,
    faults: Optional[FaultSchedule] = None,
    tracer: Optional[Tracer] = None,
    manifest: bool = False,
    chunk_events: Optional[int] = None,
    prebuilt_events: Optional[EventStream] = None,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulation` and run it.

    *tracer*, when active, records the full request lifecycle (see
    :mod:`repro.obs`); *manifest* forces provenance collection even on
    untraced runs (traced runs always collect it).  *chunk_events*
    forces the streamed event pipeline with that merge block size;
    memory-mapped traces stream automatically (see
    :class:`Simulation`).  *prebuilt_events*, when given, reuses a
    trial-scoped merged stream built once by
    :func:`repro.sim.events.build_event_stream` over the very same
    trace/requests/faults — validated on receipt, bit-identical to an
    inline merge.
    """
    return Simulation(
        trace,
        requests,
        config,
        protocol,
        seed=seed,
        faults=faults,
        tracer=tracer,
        collect_manifest=manifest,
        chunk_events=chunk_events,
        prebuilt_events=prebuilt_events,
    ).run()
