"""The discrete-event simulator.

Replays a contact trace against a request schedule and a replication
protocol, implementing the semantics of the paper's Section 6.1:

* on every contact the two nodes exchange metadata; every outstanding
  request of either node that the other's cache can satisfy is fulfilled,
  crediting the delay-utility ``h(age)``;
* every outstanding request's query counter increments once per meeting
  with a server (the fulfilling meeting included);
* protocol hooks run after fulfillment (mandate creation for QCR) and at
  the end of the contact (mandate execution and routing);
* requests for items a node itself caches are fulfilled immediately with
  gain ``h(0+)`` (configurable, see
  :class:`~repro.sim.config.SimulationConfig`).

The engine never decides replication itself — static allocations simply do
nothing in the hooks — so every algorithm of Section 6 runs on identical
machinery and identical randomness.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from ..contacts import ContactTrace
from ..demand import RequestSchedule
from ..errors import ConfigurationError, SimulationError
from ..faults import FaultEvent, FaultSchedule
from ..protocols.base import ReplicationProtocol
from ..types import IntArray, SeedLike, as_rng
from .config import SimulationConfig
from .metrics import MetricsCollector, SimulationResult
from .node import NodeState, Request

__all__ = ["Simulation", "simulate"]


class Simulation:
    """One simulation run binding trace, demand, config, and protocol.

    *faults*, when given, is merged into the event loop as a third
    stream alongside contacts and requests (see :mod:`repro.faults`):
    offline nodes neither exchange content nor generate requests, cache
    wipes and replica losses go through :meth:`remove_copy` so replica
    accounting stays consistent, and all fault randomness comes from the
    schedule's own RNG — a run with ``faults=None`` is bit-identical to
    one before fault injection existed.
    """

    def __init__(
        self,
        trace: ContactTrace,
        requests: RequestSchedule,
        config: SimulationConfig,
        protocol: ReplicationProtocol,
        seed: SeedLike = None,
        faults: Optional[FaultSchedule] = None,
    ) -> None:
        if requests.duration > trace.duration + 1e-9:
            raise ConfigurationError(
                "request schedule extends past the contact trace"
            )
        self.trace = trace
        self.requests = requests
        self.config = config
        self.protocol = protocol
        self.rng = as_rng(seed)
        self.faults = faults
        if faults is not None:
            for event in faults.events:
                if event.node is not None and event.node >= trace.n_nodes:
                    raise ConfigurationError(
                        f"fault event node {event.node} out of range "
                        f"for a {trace.n_nodes}-node trace"
                    )
                if event.item is not None and event.item >= config.n_items:
                    raise ConfigurationError(
                        f"fault event item {event.item} out of range "
                        f"for a {config.n_items}-item catalog"
                    )
            self._fault_rng = faults.runtime_rng()
            self._drop_prob = faults.drop_prob
        else:
            self._fault_rng = None
            self._drop_prob = 0.0

        n_nodes = trace.n_nodes
        self.server_ids = config.server_ids(n_nodes)
        self.client_ids = config.client_ids(n_nodes)
        server_set = set(int(m) for m in self.server_ids)
        client_set = set(int(n) for n in self.client_ids)
        if len(requests.nodes) and not set(
            int(n) for n in np.unique(requests.nodes)
        ) <= client_set:
            raise ConfigurationError(
                "request schedule contains non-client node ids"
            )

        self.nodes: List[NodeState] = [
            NodeState(
                node_id,
                is_server=node_id in server_set,
                is_client=node_id in client_set,
                capacity=config.rho,
            )
            for node_id in range(n_nodes)
        ]
        #: Server node id -> column position in allocation matrices.
        self.server_position = {
            int(node): pos for pos, node in enumerate(self.server_ids)
        }
        self.counts = np.zeros(config.n_items, dtype=np.int64)
        self.sticky_owner: Optional[IntArray] = None
        self._initialized = False
        self.metrics = MetricsCollector(
            duration=trace.duration,
            n_items=config.n_items,
            window_length=config.window_length,
            record_interval=config.record_interval,
            track_items=config.track_items,
        )
        protocol.initialize(self)
        if not self._initialized:
            raise SimulationError(
                f"protocol {protocol.name!r} did not set an initial allocation"
            )

    # ------------------------------------------------------------------
    # state manipulation (protocol-facing API)
    # ------------------------------------------------------------------
    @property
    def n_servers(self) -> int:
        return len(self.server_ids)

    def set_initial_allocation(
        self,
        allocation: IntArray,
        sticky_owner: Optional[IntArray] = None,
    ) -> None:
        """Load the initial caches from a binary allocation matrix.

        *allocation* has shape ``(n_items, n_servers)`` with columns in
        ``self.server_ids`` order; *sticky_owner*, when given, maps each
        item to the server node id holding its never-evicted replica (that
        server must hold the item in *allocation*).
        """
        if self._initialized:
            raise SimulationError("initial allocation already set")
        allocation = np.asarray(allocation)
        expected = (self.config.n_items, self.n_servers)
        if allocation.shape != expected:
            raise ConfigurationError(
                f"allocation shape {allocation.shape} != {expected}"
            )
        if not np.isin(allocation, (0, 1)).all():
            raise ConfigurationError("allocation must be binary")
        if np.any(allocation.sum(axis=0) > self.config.rho):
            raise ConfigurationError("allocation overfills a server cache")
        if sticky_owner is not None:
            sticky_owner = np.asarray(sticky_owner, dtype=np.int64)
            if sticky_owner.shape != (self.config.n_items,):
                raise ConfigurationError(
                    "sticky_owner must map every item to a server"
                )
            for item, owner in enumerate(sticky_owner):
                pos = self.server_position.get(int(owner))
                if pos is None or not allocation[item, pos]:
                    raise ConfigurationError(
                        f"sticky owner of item {item} does not hold a copy"
                    )
        # Pin sticky items first so pinning cannot hit a full cache.
        if sticky_owner is not None:
            for item, owner in enumerate(sticky_owner):
                cache = self.nodes[int(owner)].cache
                assert cache is not None
                cache.pin(item)
        for pos, node_id in enumerate(self.server_ids):
            cache = self.nodes[int(node_id)].cache
            assert cache is not None
            for item in np.where(allocation[:, pos])[0]:
                cache.add(int(item))
        self.counts = allocation.sum(axis=1).astype(np.int64)
        self.sticky_owner = sticky_owner
        self._initialized = True

    def insert_copy(self, node: NodeState, item: int) -> bool:
        """Insert a replica of *item* at *node*, evicting randomly.

        Returns True when the cache now holds a new copy of *item*;
        False when the node is not a server, already holds it, or every
        slot is pinned.  Replica accounting is updated for both the
        insertion and any eviction.
        """
        cache = node.cache
        if cache is None or item in cache:
            return False
        before = len(cache)
        victim = cache.insert(item, self.rng)
        if item not in cache:
            return False  # refused: all slots sticky
        self.counts[item] += 1
        if victim is not None:
            self.counts[victim] -= 1
        elif len(cache) == before:  # pragma: no cover - defensive
            raise SimulationError("cache bookkeeping out of sync")
        return True

    def remove_copy(self, node: NodeState, item: int) -> bool:
        """Remove a (non-sticky) replica, keeping the counts consistent.

        Not used by any protocol; exposed for failure-injection
        experiments and tests.
        """
        cache = node.cache
        if cache is None or not cache.discard(item):
            return False
        self.counts[item] -= 1
        return True

    def sticky_node_of(self, item: int) -> int:
        """Node id of the item's sticky replica, or ``-1`` if none."""
        if self.sticky_owner is None:
            return -1
        return int(self.sticky_owner[item])

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Process all events and return the collected metrics."""
        contact_times = self.trace.times.tolist()
        contact_a = self.trace.node_a.tolist()
        contact_b = self.trace.node_b.tolist()
        request_times = self.requests.times.tolist()
        request_items = self.requests.items.tolist()
        request_nodes = self.requests.nodes.tolist()

        # Faults form a third event stream; events past the horizon
        # never fire.  At equal times faults apply first (a node that
        # crashes at t is already offline for a contact at t), then
        # requests before contacts (the pre-existing tie rule).
        fault_events: List[FaultEvent] = (
            [e for e in self.faults.events if e.time <= self.trace.duration]
            if self.faults is not None
            else []
        )
        fault_times = [e.time for e in fault_events]

        record_interval = self.config.record_interval
        next_snapshot = 0.0 if record_interval is not None else math.inf

        ci, qi, fi = 0, 0, 0
        n_contacts, n_requests = len(contact_times), len(request_times)
        n_faults = len(fault_events)
        while ci < n_contacts or qi < n_requests or fi < n_faults:
            t_request = request_times[qi] if qi < n_requests else math.inf
            t_contact = contact_times[ci] if ci < n_contacts else math.inf
            t_fault = fault_times[fi] if fi < n_faults else math.inf
            take_fault = t_fault <= t_request and t_fault <= t_contact
            take_request = not take_fault and t_request <= t_contact
            t = t_fault if take_fault else (
                t_request if take_request else t_contact
            )
            while t >= next_snapshot:
                self._take_snapshot(next_snapshot)
                next_snapshot += record_interval  # type: ignore[operator]
            if take_fault:
                self._apply_fault(t, fault_events[fi])
                fi += 1
            elif take_request:
                self._handle_request(
                    t, request_items[qi], request_nodes[qi]
                )
                qi += 1
            else:
                self._handle_contact(t, contact_a[ci], contact_b[ci])
                ci += 1
        while next_snapshot <= self.trace.duration:
            self._take_snapshot(next_snapshot)
            next_snapshot += record_interval  # type: ignore[operator]
        n_unfulfilled = self._settle_unfulfilled()
        return self.metrics.build_result(self.counts, n_unfulfilled)

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _handle_request(self, t: float, item: int, node_id: int) -> None:
        node = self.nodes[node_id]
        if not node.online:
            # The device is down; its user generates no request.
            self.metrics.n_requests_offline += 1
            return
        self.metrics.record_generated()
        if node.is_server and node.cache is not None and item in node.cache:
            if self.config.self_request_policy == "skip":
                self.metrics.record_skipped_self()
                return
            h0 = self.config.utility.h0
            if not math.isfinite(h0):
                raise SimulationError(
                    f"{self.config.utility.name} has h(0+) = inf and node "
                    f"{node_id} requested item {item} it already caches; "
                    "use self_request_policy='skip' or a dedicated-node "
                    "scenario"
                )
            self.metrics.record_fulfillment(t, 0.0, h0, immediate=True)
            return
        node.add_request(Request(item, node_id, t))

    def _handle_contact(self, t: float, a: int, b: int) -> None:
        node_a = self.nodes[a]
        node_b = self.nodes[b]
        if not (node_a.online and node_b.online):
            self.metrics.n_contacts_blocked += 1
            return
        if self._drop_prob > 0.0 and self._fault_rng is not None:
            if self._fault_rng.random() < self._drop_prob:
                self.metrics.n_contacts_dropped += 1
                return
        self._exchange(t, node_a, node_b)
        self._exchange(t, node_b, node_a)
        self.protocol.after_contact(self, t, node_a, node_b)

    def _exchange(
        self, t: float, requester: NodeState, provider: NodeState
    ) -> None:
        """One direction of the metadata exchange: query and fulfill."""
        if not provider.is_server:
            return
        outstanding = requester.outstanding
        if not outstanding:
            return
        timeout = self.config.request_timeout
        if timeout is not None:
            self._expire_requests(requester, t - timeout)
            if not outstanding:
                return
        provider_cache = provider.cache
        assert provider_cache is not None
        utility = self.config.utility
        fulfilled = None
        for item, request_list in outstanding.items():
            for request in request_list:
                request.counter += 1
            if item in provider_cache:
                if fulfilled is None:
                    fulfilled = [item]
                else:
                    fulfilled.append(item)
        if fulfilled is None:
            return
        for item in fulfilled:
            for request in outstanding.pop(item):
                delay = t - request.created_at
                gain = float(utility(delay)) if delay > 0 else utility.h0
                if not math.isfinite(gain):
                    # Measure-zero tie between a request and a contact at
                    # the same instant under an unbounded utility.
                    gain = 0.0
                self.metrics.record_fulfillment(t, delay, gain)
                self.protocol.on_fulfill(
                    self, t, requester, provider, item, request.counter
                )

    def _expire_requests(self, node: NodeState, deadline: float) -> None:
        """Drop outstanding requests created before *deadline*."""
        utility = self.config.utility
        abandoned_gain = utility.gain_never
        credit = math.isfinite(abandoned_gain) and abandoned_gain != 0.0
        stale_items = None
        for item, request_list in node.outstanding.items():
            if any(r.created_at < deadline for r in request_list):
                if stale_items is None:
                    stale_items = [item]
                else:
                    stale_items.append(item)
        if stale_items is None:
            return
        for item in stale_items:
            request_list = node.outstanding[item]
            kept = [r for r in request_list if r.created_at >= deadline]
            expired = len(request_list) - len(kept)
            if credit:
                for _ in range(expired):
                    self.metrics.record_abandonment(deadline, abandoned_gain)
            self.metrics.n_expired += expired
            if kept:
                node.outstanding[item] = kept
            else:
                del node.outstanding[item]

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def _apply_fault(self, t: float, event: FaultEvent) -> None:
        if event.kind == "crash":
            self._crash_node(t, event)
        elif event.kind == "recover":
            self._recover_node(t, event)
        else:  # "replica_loss"
            self._lose_replica(t, event)

    def _crash_node(self, t: float, event: FaultEvent) -> None:
        node = self.nodes[event.node]  # type: ignore[index]
        if not node.online:
            return  # already down; crash is idempotent
        node.online = False
        self.metrics.record_crash(t, node.node_id)
        if node.outstanding:
            self.metrics.n_requests_lost += node.n_outstanding()
            node.outstanding.clear()
        if event.lose_mandates and node.mandates:
            self.metrics.n_mandates_lost += sum(node.mandates.values())
            node.mandates.clear()
        if event.wipe_cache and node.cache is not None and len(node.cache):
            assert self.faults is not None
            count_before = int(self.counts.sum())
            cache = node.cache
            lost = 0
            if not self.faults.sticky_survives and cache.sticky is not None:
                item = cache.unpin()
                if item is not None and self.sticky_owner is not None:
                    # The network-wide no-extinction guarantee is gone
                    # for this item; mandate routing stops favoring the
                    # (now nonexistent) sticky node.
                    self.sticky_owner[item] = -1
            for item in sorted(cache.items()):
                if self.remove_copy(node, item):
                    lost += 1
            self.metrics.record_replica_loss(t, lost, count_before)

    def _recover_node(self, t: float, event: FaultEvent) -> None:
        node = self.nodes[event.node]  # type: ignore[index]
        if node.online:
            return
        node.online = True
        self.metrics.record_recovery(t, node.node_id)

    def _lose_replica(self, t: float, event: FaultEvent) -> None:
        count_before = int(self.counts.sum())
        if event.node is not None:
            node = self.nodes[event.node]
            item = event.item
            if item is None:
                item = self._pick_lossy_item(node)
                if item is None:
                    return
            if self.remove_copy(node, item):
                self.metrics.record_replica_loss(t, 1, count_before)
            return
        # Unresolved loss: destroy a uniformly random non-sticky
        # replica anywhere in the network (schedule RNG, sorted
        # candidate order — fully deterministic per schedule seed).
        rng = self._fault_rng
        assert rng is not None
        candidates = [
            (node, item)
            for node in self.nodes
            if node.cache is not None
            for item in sorted(node.cache.items())
            if item != node.cache.sticky
        ]
        if not candidates:
            return
        node, item = candidates[int(rng.integers(len(candidates)))]
        if self.remove_copy(node, item):
            self.metrics.record_replica_loss(t, 1, count_before)

    def _pick_lossy_item(self, node: NodeState) -> Optional[int]:
        """A random non-sticky cached item of *node*, or ``None``."""
        cache = node.cache
        if cache is None:
            return None
        rng = self._fault_rng
        assert rng is not None
        pool = [i for i in sorted(cache.items()) if i != cache.sticky]
        if not pool:
            return None
        return pool[int(rng.integers(len(pool)))]

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _take_snapshot(self, t: float) -> None:
        mandates = self.protocol.mandate_totals(self)
        self.metrics.record_snapshot(t, self.counts, mandates)

    def _settle_unfulfilled(self) -> int:
        """Apply the end-of-horizon policy to outstanding requests."""
        utility = self.config.utility
        horizon = self.trace.duration
        truncate = self.config.unfulfilled_policy == "truncate"
        n_unfulfilled = 0
        for node in self.nodes:
            for request_list in node.outstanding.values():
                for request in request_list:
                    n_unfulfilled += 1
                    if truncate:
                        age = horizon - request.created_at
                        if age > 0:
                            gain = float(utility(age))
                            if math.isfinite(gain):
                                self.metrics.record_end_of_run_gain(gain)
        return n_unfulfilled


def simulate(
    trace: ContactTrace,
    requests: RequestSchedule,
    config: SimulationConfig,
    protocol: ReplicationProtocol,
    seed: SeedLike = None,
    faults: Optional[FaultSchedule] = None,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulation` and run it."""
    return Simulation(
        trace, requests, config, protocol, seed=seed, faults=faults
    ).run()
