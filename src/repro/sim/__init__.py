"""Discrete-event simulator for opportunistic P2P caching."""

from .cache import Cache
from .config import SimulationConfig
from .engine import Simulation, simulate
from .metrics import MetricsCollector, SimulationResult
from .node import NodeState, Request
from .seeding import assign_sticky, seed_allocation

__all__ = [
    "Cache",
    "SimulationConfig",
    "Simulation",
    "simulate",
    "MetricsCollector",
    "SimulationResult",
    "NodeState",
    "Request",
    "assign_sticky",
    "seed_allocation",
]
