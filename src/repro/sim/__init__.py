"""Discrete-event simulator for opportunistic P2P caching."""

from .cache import Cache
from .config import SimulationConfig
from .engine import Simulation, simulate
from .events import EventStream, build_event_stream
from .metrics import MetricsCollector, SimulationResult
from .node import NodeState, Request
from .seeding import assign_sticky, seed_allocation

__all__ = [
    "Cache",
    "SimulationConfig",
    "Simulation",
    "simulate",
    "EventStream",
    "build_event_stream",
    "MetricsCollector",
    "SimulationResult",
    "NodeState",
    "Request",
    "assign_sticky",
    "seed_allocation",
]
