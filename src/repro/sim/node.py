"""Per-node simulation state: cache, outstanding requests, mandates."""

from __future__ import annotations

from typing import Dict, List, Optional

from .cache import Cache

__all__ = ["Request", "NodeState"]


class Request:
    """An outstanding client request and its QCR query counter."""

    __slots__ = ("item", "node", "created_at", "counter")

    def __init__(
        self, item: int, node: int, created_at: float, counter: int = 0
    ) -> None:
        self.item = item
        self.node = node
        self.created_at = created_at
        #: Number of (server) meetings since creation — the QCR query count.
        #: The fast engine loops instead stash the node's server-meeting
        #: count *at creation* here and recover the final counter by
        #: subtraction at fulfillment time; the traced path keeps the
        #: eager per-meeting increments.
        self.counter = counter

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Request(item={self.item}, node={self.node}, "
            f"t={self.created_at:g}, counter={self.counter})"
        )


class NodeState:
    """Mutable state of one node during a simulation."""

    __slots__ = (
        "node_id",
        "is_server",
        "is_client",
        "online",
        "cache",
        "outstanding",
        "mandates",
    )

    def __init__(
        self,
        node_id: int,
        *,
        is_server: bool,
        is_client: bool,
        capacity: int,
    ) -> None:
        self.node_id = node_id
        self.is_server = is_server
        self.is_client = is_client
        #: Fault-injection state: offline nodes skip contacts and requests.
        self.online = True
        self.cache: Optional[Cache] = Cache(capacity) if is_server else None
        #: item -> outstanding requests for that item.
        self.outstanding: Dict[int, List[Request]] = {}
        #: item -> pending replication-mandate count (QCR state).
        self.mandates: Dict[int, int] = {}

    def has_item(self, item: int) -> bool:
        return self.cache is not None and item in self.cache

    def add_request(self, request: Request) -> None:
        self.outstanding.setdefault(request.item, []).append(request)

    def n_outstanding(self) -> int:
        return sum(len(reqs) for reqs in self.outstanding.values())

    def total_mandates(self) -> int:
        return sum(self.mandates.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cached = sorted(self.cache) if self.cache is not None else None
        return (
            f"NodeState(id={self.node_id}, server={self.is_server}, "
            f"client={self.is_client}, cache={cached}, "
            f"outstanding={self.n_outstanding()}, mandates={self.total_mandates()})"
        )
