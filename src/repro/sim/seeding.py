"""Initial cache seeding.

The paper's VideoForU story seeds "one or two copies of each episode into
the global cache" and lets the protocol replicate from there; the
simulator additionally designates one *sticky* replica per item that is
never evicted (Section 6.1), so no item can go extinct.

:func:`assign_sticky` spreads sticky replicas over servers (at most
``rho`` per server); :func:`seed_counts` describes the common starting
state — the sticky copy of each item plus a uniform-random fill of the
remaining slots.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..types import IntArray, SeedLike, as_rng

__all__ = ["assign_sticky", "seed_allocation"]


def assign_sticky(
    n_items: int,
    server_ids: IntArray,
    rho: int,
    seed: SeedLike = None,
) -> IntArray:
    """Assign each item's sticky replica to a server.

    Servers are shuffled and items dealt round-robin, so no server gets
    more than ``ceil(n_items / n_servers)`` sticky items; that must not
    exceed ``rho``.

    Returns an array mapping ``item -> server node id``.
    """
    server_ids = np.asarray(server_ids, dtype=np.int64)
    n_servers = len(server_ids)
    if n_servers == 0:
        raise ConfigurationError("need at least one server")
    per_server = -(-n_items // n_servers)  # ceil
    if per_server > rho:
        raise ConfigurationError(
            f"{n_items} sticky items over {n_servers} servers need "
            f"{per_server} slots each, but rho = {rho}"
        )
    rng = as_rng(seed)
    shuffled = server_ids[rng.permutation(n_servers)]
    owners = np.empty(n_items, dtype=np.int64)
    for item in range(n_items):
        owners[item] = shuffled[item % n_servers]
    return owners


def seed_allocation(
    n_items: int,
    server_ids: IntArray,
    rho: int,
    seed: SeedLike = None,
    *,
    sticky_owner: Optional[IntArray] = None,
) -> Tuple[IntArray, IntArray]:
    """Build an initial allocation: sticky copies plus random fill.

    Returns ``(allocation, sticky_owner)`` where *allocation* is a binary
    ``(n_items, n_servers)`` matrix over the *positions* of ``server_ids``
    and *sticky_owner* maps items to server node ids.
    """
    rng = as_rng(seed)
    server_ids = np.asarray(server_ids, dtype=np.int64)
    n_servers = len(server_ids)
    if sticky_owner is None:
        sticky_owner = assign_sticky(n_items, server_ids, rho, rng)
    position_of = {int(node): pos for pos, node in enumerate(server_ids)}

    allocation = np.zeros((n_items, n_servers), dtype=np.int8)
    loads = np.zeros(n_servers, dtype=np.int64)
    for item, owner in enumerate(sticky_owner):
        pos = position_of[int(owner)]
        allocation[item, pos] = 1
        loads[pos] += 1

    # Uniform random fill of the remaining slots with distinct items.
    for pos in range(n_servers):
        free = rho - int(loads[pos])
        if free <= 0:
            continue
        absent = np.where(allocation[:, pos] == 0)[0]
        if len(absent) == 0:
            continue
        chosen = rng.choice(absent, size=min(free, len(absent)), replace=False)
        allocation[chosen, pos] = 1
        loads[pos] += len(chosen)
    return allocation, sticky_owner
