"""Memoryless (Poisson) contact generators — the paper's analytic model.

Section 3.4: contacts between nodes ``m`` and ``n`` form independent
Poisson processes of intensity ``mu_{m,n}``.  The *homogeneous* case
(``mu_{m,n} = mu`` for all pairs) is the setting of Theorem 2 and the
Section 6.2 experiments.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..types import FloatArray, SeedLike, as_rng
from .trace import ContactTrace

__all__ = ["homogeneous_poisson_trace", "heterogeneous_poisson_trace"]


def homogeneous_poisson_trace(
    n_nodes: int,
    rate: float,
    duration: float,
    seed: SeedLike = None,
) -> ContactTrace:
    """Sample a trace where every pair meets at Poisson rate *rate*.

    The superposition of all pair processes is Poisson with total rate
    ``rate * n_pairs``; we draw the total event count, uniform event times,
    and a uniform pair per event — an exact sample of the joint process.
    """
    if n_nodes < 2:
        raise ConfigurationError(f"need >= 2 nodes, got {n_nodes}")
    if rate <= 0:
        raise ConfigurationError(f"rate must be > 0, got {rate}")
    if duration <= 0:
        raise ConfigurationError(f"duration must be > 0, got {duration}")
    rng = as_rng(seed)

    n_pairs = n_nodes * (n_nodes - 1) // 2
    n_events = rng.poisson(rate * n_pairs * duration)
    times = np.sort(rng.uniform(0.0, duration, size=n_events))
    pair_index = rng.integers(0, n_pairs, size=n_events)
    node_a, node_b = _pair_from_index(pair_index, n_nodes)
    return ContactTrace(
        times=times,
        node_a=node_a,
        node_b=node_b,
        n_nodes=n_nodes,
        duration=duration,
    )


def heterogeneous_poisson_trace(
    rate_matrix: FloatArray,
    duration: float,
    seed: SeedLike = None,
) -> ContactTrace:
    """Sample a trace with per-pair Poisson intensities *rate_matrix*.

    *rate_matrix* must be a symmetric non-negative ``(n, n)`` matrix with a
    zero diagonal (``mu_{m,n}`` of Section 3.4).
    """
    rates = np.asarray(rate_matrix, dtype=float)
    if rates.ndim != 2 or rates.shape[0] != rates.shape[1]:
        raise ConfigurationError("rate_matrix must be square")
    n_nodes = rates.shape[0]
    if n_nodes < 2:
        raise ConfigurationError(f"need >= 2 nodes, got {n_nodes}")
    if not np.allclose(rates, rates.T):
        raise ConfigurationError("rate_matrix must be symmetric")
    if np.any(np.diag(rates) != 0):
        raise ConfigurationError("rate_matrix diagonal must be zero")
    if np.any(rates < 0) or not np.all(np.isfinite(rates)):
        raise ConfigurationError("rates must be finite and >= 0")
    if duration <= 0:
        raise ConfigurationError(f"duration must be > 0, got {duration}")
    rng = as_rng(seed)

    iu = np.triu_indices(n_nodes, k=1)
    pair_rates = rates[iu]
    total = pair_rates.sum()
    if total <= 0:
        raise ConfigurationError("at least one pair rate must be positive")
    n_events = rng.poisson(total * duration)
    times = np.sort(rng.uniform(0.0, duration, size=n_events))
    chosen = rng.choice(len(pair_rates), size=n_events, p=pair_rates / total)
    return ContactTrace(
        times=times,
        node_a=iu[0][chosen],
        node_b=iu[1][chosen],
        n_nodes=n_nodes,
        duration=duration,
    )


def _pair_from_index(index: np.ndarray, n_nodes: int) -> tuple:
    """Map pair indices ``0..n_pairs-1`` to ``(a, b)`` with ``a < b``.

    Uses the row-major upper-triangle enumeration: pair ``k`` belongs to
    row ``a`` where rows have ``n-1-a`` entries.
    """
    index = np.asarray(index, dtype=np.int64)
    # Solve a from the cumulative row sizes via the quadratic formula:
    # offset(a) = a*n - a*(a+3)/2 ... derived below with floats then fixed up.
    n = n_nodes
    a = np.floor(
        (2 * n - 1 - np.sqrt((2 * n - 1) ** 2 - 8 * index)) / 2
    ).astype(np.int64)
    offset = a * (n - 1) - a * (a - 1) // 2
    # Numeric edge cases: fix rows off by one.
    too_big = offset > index
    while np.any(too_big):
        a[too_big] -= 1
        offset = a * (n - 1) - a * (a - 1) // 2
        too_big = offset > index
    next_offset = (a + 1) * (n - 1) - (a + 1) * a // 2
    too_small = index >= next_offset
    while np.any(too_small):
        a[too_small] += 1
        offset = a * (n - 1) - a * (a - 1) // 2
        next_offset = (a + 1) * (n - 1) - (a + 1) * a // 2
        too_small = index >= next_offset
    b = a + 1 + (index - offset)
    return a, b
