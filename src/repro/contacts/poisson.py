"""Memoryless (Poisson) contact generators — the paper's analytic model.

Section 3.4: contacts between nodes ``m`` and ``n`` form independent
Poisson processes of intensity ``mu_{m,n}``.  The *homogeneous* case
(``mu_{m,n} = mu`` for all pairs) is the setting of Theorem 2 and the
Section 6.2 experiments.

Both generators can stream to disk: pass ``out=`` and the trace is
sampled in bounded-memory chunks written through
:class:`~repro.contacts.binary.BinaryTraceWriter`, then reopened as a
read-only memory map — this is how 10^6-node / 10^8-event traces are
produced without ever materializing the event set.  A Poisson process
has independent increments, so sampling each sub-interval separately is
an exact draw of the same joint process (the realization differs from
the unchunked path because the RNG is consumed in a different order).
"""

from __future__ import annotations

import math
import os
from typing import Optional, Union

import numpy as np

from ..errors import ConfigurationError
from ..types import FloatArray, SeedLike, as_rng
from .binary import BinaryTraceWriter, load_binary
from .trace import ContactTrace

__all__ = ["homogeneous_poisson_trace", "heterogeneous_poisson_trace"]

PathLike = Union[str, "os.PathLike[str]"]

#: Target events per generation chunk when streaming to disk.
DEFAULT_CHUNK_TARGET = 1 << 22


def _chunk_edges(expected_events: float, duration: float, target: int) -> FloatArray:
    """Sub-interval boundaries sized so each chunk expects ~*target* events."""
    if target < 1:
        raise ConfigurationError(f"chunk target must be >= 1, got {target}")
    n_chunks = max(1, math.ceil(expected_events / target))
    return np.linspace(0.0, duration, n_chunks + 1)


def homogeneous_poisson_trace(
    n_nodes: int,
    rate: float,
    duration: float,
    seed: SeedLike = None,
    *,
    out: Optional[PathLike] = None,
    chunk_target: int = DEFAULT_CHUNK_TARGET,
) -> ContactTrace:
    """Sample a trace where every pair meets at Poisson rate *rate*.

    The superposition of all pair processes is Poisson with total rate
    ``rate * n_pairs``; we draw the total event count, uniform event times,
    and a uniform pair per event — an exact sample of the joint process.

    With ``out=`` the trace is generated chunk by chunk (independent
    Poisson increments over a partition of ``[0, duration]``), streamed
    to a binary trace directory at *out*, and returned memory-mapped;
    peak memory is one chunk of ~*chunk_target* events regardless of the
    trace size.  Without ``out`` the in-memory draw is byte-identical to
    what this function has always produced for a given seed.
    """
    if n_nodes < 2:
        raise ConfigurationError(f"need >= 2 nodes, got {n_nodes}")
    if rate <= 0:
        raise ConfigurationError(f"rate must be > 0, got {rate}")
    if duration <= 0:
        raise ConfigurationError(f"duration must be > 0, got {duration}")
    rng = as_rng(seed)

    n_pairs = n_nodes * (n_nodes - 1) // 2
    if out is None:
        n_events = rng.poisson(rate * n_pairs * duration)
        times = np.sort(rng.uniform(0.0, duration, size=n_events))
        pair_index = rng.integers(0, n_pairs, size=n_events)
        node_a, node_b = _pair_from_index(pair_index, n_nodes)
        return ContactTrace(
            times=times,
            node_a=node_a,
            node_b=node_b,
            n_nodes=n_nodes,
            duration=duration,
        )

    edges = _chunk_edges(rate * n_pairs * duration, duration, chunk_target)
    with BinaryTraceWriter(out, n_nodes=n_nodes, duration=duration) as writer:
        for t0, t1 in zip(edges[:-1], edges[1:]):
            n_events = rng.poisson(rate * n_pairs * (t1 - t0))
            times = np.sort(rng.uniform(t0, t1, size=n_events))
            pair_index = rng.integers(0, n_pairs, size=n_events)
            node_a, node_b = _pair_from_index(pair_index, n_nodes)
            writer.append(times, node_a, node_b)
    # Chunks were validated and canonicalized on write; skip the rescan.
    return load_binary(out, validate=False)


def heterogeneous_poisson_trace(
    rate_matrix: FloatArray,
    duration: float,
    seed: SeedLike = None,
    *,
    out: Optional[PathLike] = None,
    chunk_target: int = DEFAULT_CHUNK_TARGET,
) -> ContactTrace:
    """Sample a trace with per-pair Poisson intensities *rate_matrix*.

    *rate_matrix* must be a symmetric non-negative ``(n, n)`` matrix with a
    zero diagonal (``mu_{m,n}`` of Section 3.4).  ``out=`` streams the
    trace to disk in bounded-memory chunks exactly as in
    :func:`homogeneous_poisson_trace`.
    """
    rates = np.asarray(rate_matrix, dtype=float)
    if rates.ndim != 2 or rates.shape[0] != rates.shape[1]:
        raise ConfigurationError("rate_matrix must be square")
    n_nodes = rates.shape[0]
    if n_nodes < 2:
        raise ConfigurationError(f"need >= 2 nodes, got {n_nodes}")
    if not np.allclose(rates, rates.T):
        raise ConfigurationError("rate_matrix must be symmetric")
    if np.any(np.diag(rates) != 0):
        raise ConfigurationError("rate_matrix diagonal must be zero")
    if np.any(rates < 0) or not np.all(np.isfinite(rates)):
        raise ConfigurationError("rates must be finite and >= 0")
    if duration <= 0:
        raise ConfigurationError(f"duration must be > 0, got {duration}")
    rng = as_rng(seed)

    iu = np.triu_indices(n_nodes, k=1)
    pair_rates = rates[iu]
    total = pair_rates.sum()
    if total <= 0:
        raise ConfigurationError("at least one pair rate must be positive")
    if out is None:
        n_events = rng.poisson(total * duration)
        times = np.sort(rng.uniform(0.0, duration, size=n_events))
        chosen = rng.choice(len(pair_rates), size=n_events, p=pair_rates / total)
        return ContactTrace(
            times=times,
            node_a=iu[0][chosen],
            node_b=iu[1][chosen],
            n_nodes=n_nodes,
            duration=duration,
        )

    probabilities = pair_rates / total
    edges = _chunk_edges(total * duration, duration, chunk_target)
    with BinaryTraceWriter(out, n_nodes=n_nodes, duration=duration) as writer:
        for t0, t1 in zip(edges[:-1], edges[1:]):
            n_events = rng.poisson(total * (t1 - t0))
            times = np.sort(rng.uniform(t0, t1, size=n_events))
            chosen = rng.choice(len(pair_rates), size=n_events, p=probabilities)
            writer.append(times, iu[0][chosen], iu[1][chosen])
    return load_binary(out, validate=False)


def _pair_from_index(index: np.ndarray, n_nodes: int) -> tuple:
    """Map pair indices ``0..n_pairs-1`` to ``(a, b)`` with ``a < b``.

    Uses the row-major upper-triangle enumeration: pair ``k`` belongs to
    row ``a`` where rows have ``n-1-a`` entries.  Counting ``r`` pairs
    back from the end turns the shrinking rows into the standard
    triangular sequence, so the row index comes from one closed-form
    inversion ``t = floor((sqrt(8r+1)-1)/2)`` — no data-dependent
    fix-up loops.
    """
    index = np.asarray(index, dtype=np.int64)
    n = n_nodes
    n_pairs = n * (n - 1) // 2
    r = n_pairs - 1 - index
    t = ((np.sqrt(8.0 * r.astype(np.float64) + 1.0) - 1.0) * 0.5).astype(
        np.int64
    )
    # float sqrt can land one row off near triangular numbers; a single
    # exact integer step in each direction restores T(t) <= r < T(t+1).
    t += (t + 1) * (t + 2) // 2 <= r
    t -= t * (t + 1) // 2 > r
    a = n - 2 - t
    b = n - 1 - (r - t * (t + 1) // 2)
    return a, b
