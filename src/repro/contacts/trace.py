"""Contact traces: the substrate every experiment runs on.

A :class:`ContactTrace` is a time-sorted sequence of pairwise meeting
events between nodes over an observation window ``[0, duration]``.  Both
synthetic generators (:mod:`repro.contacts.poisson`,
:mod:`repro.contacts.synthetic`) and file loaders
(:mod:`repro.contacts.io`) produce this type, and the simulator consumes
it, so algorithms are completely decoupled from where contacts come from —
exactly how the paper swaps homogeneous models for Infocom/Cabspotting
traces.

Contacts are instantaneous meetings (the paper works "on the premise that
meetings are sufficiently long for nodes to complete the protocol
exchange"); node pairs are canonicalized to ``node_a < node_b``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

import numpy as np

from ..errors import TraceFormatError
from ..types import FloatArray, IntArray

__all__ = ["ContactTrace"]


@dataclass(frozen=True)
class ContactTrace:
    """A sorted sequence of pairwise contact events.

    Attributes
    ----------
    times:
        Event times, non-decreasing, within ``[0, duration]``.
    node_a, node_b:
        Endpoints of each contact; canonicalized so ``node_a < node_b``.
    n_nodes:
        Number of nodes; ids are dense in ``range(n_nodes)``.
    duration:
        Length of the observation window (used for rate estimation).
    """

    times: FloatArray
    node_a: IntArray
    node_b: IntArray
    n_nodes: int
    duration: float

    def __post_init__(self) -> None:
        times = np.asarray(self.times, dtype=float)
        a = np.asarray(self.node_a, dtype=np.int64)
        b = np.asarray(self.node_b, dtype=np.int64)
        if not (len(times) == len(a) == len(b)):
            raise TraceFormatError("times/node_a/node_b lengths differ")
        if self.n_nodes < 2:
            raise TraceFormatError(f"need >= 2 nodes, got {self.n_nodes}")
        if self.duration <= 0:
            raise TraceFormatError(f"duration must be > 0, got {self.duration}")
        if len(times):
            if np.any(np.diff(times) < 0):
                raise TraceFormatError("contact times must be sorted")
            if times[0] < 0 or times[-1] > self.duration:
                raise TraceFormatError("contact times must lie in [0, duration]")
            if np.any(a == b):
                raise TraceFormatError("self-contacts are not allowed")
            if a.min() < 0 or max(a.max(), b.max()) >= self.n_nodes:
                raise TraceFormatError("node ids must lie in [0, n_nodes)")
        # Canonical order: node_a < node_b.
        swap = a > b
        if np.any(swap):
            a, b = np.where(swap, b, a), np.where(swap, a, b)
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "node_a", a.astype(np.int64))
        object.__setattr__(self, "node_b", b.astype(np.int64))

    # ------------------------------------------------------------------
    # trusted construction (zero-copy)
    # ------------------------------------------------------------------
    @classmethod
    def from_trusted_columns(
        cls,
        times: FloatArray,
        node_a: IntArray,
        node_b: IntArray,
        *,
        n_nodes: int,
        duration: float,
    ) -> "ContactTrace":
        """Wrap already-validated columns without copying or checking.

        The normal constructor validates, canonicalizes, and (for the
        node columns) copies via ``astype`` — prohibitive for a
        memory-mapped 10^8-event trace.  Callers must guarantee the
        invariants themselves: float64/int64 dtypes, equal lengths,
        sorted times within ``[0, duration]``, canonical
        ``node_a < node_b`` in ``[0, n_nodes)``.  The binary loader and
        the chunk/slice views below qualify; arbitrary external data
        does not.
        """
        trace = object.__new__(cls)
        object.__setattr__(trace, "times", times)
        object.__setattr__(trace, "node_a", node_a)
        object.__setattr__(trace, "node_b", node_b)
        object.__setattr__(trace, "n_nodes", n_nodes)
        object.__setattr__(trace, "duration", duration)
        return trace

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[Tuple[float, int, int]]:
        for k in range(len(self.times)):
            yield (
                float(self.times[k]),
                int(self.node_a[k]),
                int(self.node_b[k]),
            )

    @property
    def n_pairs(self) -> int:
        """Number of unordered node pairs."""
        return self.n_nodes * (self.n_nodes - 1) // 2

    @property
    def mean_pair_rate(self) -> float:
        """Average contacts per pair per unit time."""
        return len(self) / (self.n_pairs * self.duration)

    def iter_chunks(self, n_events: int) -> Iterator["ContactTrace"]:
        """Yield consecutive sub-traces of at most *n_events* contacts.

        Chunks are zero-copy column views (slices share the backing
        buffers, including a memory map) carrying the full ``duration``
        and original (un-rebased) times, so a chunk is exactly "the
        same trace, restricted to a contiguous run of events".
        """
        if n_events < 1:
            raise TraceFormatError(
                f"chunk size must be >= 1, got {n_events}"
            )
        for start in range(0, len(self.times), n_events):
            stop = start + n_events
            yield ContactTrace.from_trusted_columns(
                self.times[start:stop],
                self.node_a[start:stop],
                self.node_b[start:stop],
                n_nodes=self.n_nodes,
                duration=self.duration,
            )

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def sliced(self, t_start: float, t_end: float) -> "ContactTrace":
        """Return the sub-trace on ``[t_start, t_end)``, re-based to 0.

        Times are sorted (a construction invariant), so the window is
        located with two binary searches and only the selected run is
        materialized — slicing a memory-mapped trace never scans or
        copies the full columns.
        """
        if not 0 <= t_start < t_end <= self.duration:
            raise TraceFormatError(
                f"invalid slice [{t_start}, {t_end}) of [0, {self.duration}]"
            )
        lo = int(np.searchsorted(self.times, t_start, side="left"))
        hi = int(np.searchsorted(self.times, t_end, side="left"))
        # np.asarray drops the np.memmap subclass from the view (no
        # copy) so the rebased times come out as a plain ndarray.
        return ContactTrace.from_trusted_columns(
            np.asarray(self.times[lo:hi]) - t_start,
            self.node_a[lo:hi],
            self.node_b[lo:hi],
            n_nodes=self.n_nodes,
            duration=t_end - t_start,
        )

    def select_nodes(self, node_ids: Sequence[int]) -> "ContactTrace":
        """Keep only contacts among *node_ids* and relabel them densely.

        Mirrors the paper's pre-processing, which keeps the 50
        best-covered Infocom participants.
        """
        ids = np.asarray(sorted(set(int(n) for n in node_ids)), dtype=np.int64)
        if len(ids) < 2:
            raise TraceFormatError("need >= 2 selected nodes")
        if ids[0] < 0 or ids[-1] >= self.n_nodes:
            raise TraceFormatError("selected ids out of range")
        lookup = -np.ones(self.n_nodes, dtype=np.int64)
        lookup[ids] = np.arange(len(ids))
        # Filter block-wise so temporaries stay bounded on huge
        # (memory-mapped) traces; only the kept subset is materialized.
        # The id lookup is monotone, so relabeling preserves the
        # canonical node_a < node_b order.
        kept_t, kept_a, kept_b = [], [], []
        block = 1 << 22
        for start in range(0, len(self.times), block):
            stop = start + block
            la = lookup[self.node_a[start:stop]]
            lb = lookup[self.node_b[start:stop]]
            keep = (la >= 0) & (lb >= 0)
            kept_t.append(np.asarray(self.times[start:stop])[keep])
            kept_a.append(la[keep])
            kept_b.append(lb[keep])
        return ContactTrace.from_trusted_columns(
            np.concatenate(kept_t) if kept_t else np.empty(0, dtype=float),
            np.concatenate(kept_a)
            if kept_a
            else np.empty(0, dtype=np.int64),
            np.concatenate(kept_b)
            if kept_b
            else np.empty(0, dtype=np.int64),
            n_nodes=len(ids),
            duration=self.duration,
        )

    def time_scaled(self, factor: float) -> "ContactTrace":
        """Return a copy with all times (and duration) multiplied.

        The node columns are shared with the source trace (views, not
        copies) — only the scaled times are materialized.
        """
        if factor <= 0:
            raise TraceFormatError(f"factor must be > 0, got {factor}")
        return ContactTrace.from_trusted_columns(
            np.asarray(self.times) * factor,
            self.node_a,
            self.node_b,
            n_nodes=self.n_nodes,
            duration=self.duration * factor,
        )

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------
    def pair_counts(self) -> IntArray:
        """Return an ``(n, n)`` symmetric matrix of per-pair contact counts."""
        counts = np.zeros((self.n_nodes, self.n_nodes), dtype=np.int64)
        np.add.at(counts, (self.node_a, self.node_b), 1)
        counts += counts.T
        return counts

    def node_contact_counts(self) -> IntArray:
        """Total contacts each node participates in."""
        counts = np.bincount(self.node_a, minlength=self.n_nodes)
        counts += np.bincount(self.node_b, minlength=self.n_nodes)
        return counts.astype(np.int64)

    @staticmethod
    def concatenate(traces: Sequence["ContactTrace"]) -> "ContactTrace":
        """Join traces back-to-back in time (same node population)."""
        if not traces:
            raise TraceFormatError("need at least one trace")
        n_nodes = traces[0].n_nodes
        if any(t.n_nodes != n_nodes for t in traces):
            raise TraceFormatError("all traces must share n_nodes")
        offsets = np.cumsum([0.0] + [t.duration for t in traces[:-1]])
        # Inputs are already validated and canonical, so the joined
        # columns go through the trusted constructor — one concatenate
        # each, no extra astype copies.
        return ContactTrace.from_trusted_columns(
            np.concatenate(
                [np.asarray(t.times) + off for t, off in zip(traces, offsets)]
            ),
            np.concatenate([t.node_a for t in traces]),
            np.concatenate([t.node_b for t in traces]),
            n_nodes=n_nodes,
            duration=float(sum(t.duration for t in traces)),
        )
