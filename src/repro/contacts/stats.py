"""Trace statistics: rate estimation, heterogeneity, burstiness.

These are the quantities Section 6.3 of the paper manipulates: per-pair
contact intensities ``mu_{m,n}`` (estimated from event counts), how
heterogeneous they are across pairs, and how far inter-contact times
deviate from the memoryless (exponential) baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import TraceFormatError
from ..types import FloatArray
from .trace import ContactTrace

__all__ = [
    "pair_rate_matrix",
    "inter_contact_times",
    "burstiness",
    "TraceStats",
    "summarize",
    "select_best_covered",
]


def pair_rate_matrix(trace: ContactTrace) -> FloatArray:
    """Estimate the symmetric contact-intensity matrix ``mu_{m,n}``.

    The maximum-likelihood estimate under a Poisson contact model is
    ``count / duration`` per pair; the diagonal is zero.
    """
    return trace.pair_counts() / trace.duration


def inter_contact_times(
    trace: ContactTrace, pair: Optional[Tuple[int, int]] = None
) -> FloatArray:
    """Return inter-contact gaps, aggregated or for a single *pair*.

    With ``pair=None``, gaps of every pair with at least two contacts are
    pooled — the aggregate distribution opportunistic-network studies plot.
    """
    if pair is not None:
        a, b = min(pair), max(pair)
        mask = (trace.node_a == a) & (trace.node_b == b)
        times = trace.times[mask]
        return np.diff(times)
    key = trace.node_a * trace.n_nodes + trace.node_b
    order = np.lexsort((trace.times, key))
    sorted_key = key[order]
    sorted_times = trace.times[order]
    gaps = np.diff(sorted_times)
    same_pair = np.diff(sorted_key) == 0
    return gaps[same_pair]


def burstiness(gaps: FloatArray) -> float:
    """Goh-Barabasi burstiness ``B = (sigma - m) / (sigma + m)`` of gaps.

    ``B = 0`` for a memoryless (exponential) process, ``B -> 1`` for
    extremely bursty trains, ``B < 0`` for regular (periodic) processes.
    """
    gaps = np.asarray(gaps, dtype=float)
    if len(gaps) < 2:
        raise TraceFormatError("need >= 2 gaps to measure burstiness")
    mean = gaps.mean()
    std = gaps.std()
    if mean + std == 0:
        return 0.0
    return float((std - mean) / (std + mean))


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a contact trace."""

    n_nodes: int
    n_events: int
    duration: float
    mean_pair_rate: float
    #: Coefficient of variation of per-pair rates (0 = homogeneous).
    rate_cv: float
    #: Fraction of pairs that never meet.
    disconnected_pair_fraction: float
    #: Burstiness of pooled inter-contact gaps (0 = memoryless).
    burstiness: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TraceStats(nodes={self.n_nodes}, events={self.n_events}, "
            f"duration={self.duration:g}, mean_rate={self.mean_pair_rate:.3g}, "
            f"rate_cv={self.rate_cv:.2f}, "
            f"disconnected={self.disconnected_pair_fraction:.0%}, "
            f"burstiness={self.burstiness:.2f})"
        )


def summarize(trace: ContactTrace) -> TraceStats:
    """Compute :class:`TraceStats` for *trace*."""
    rates = pair_rate_matrix(trace)
    upper = rates[np.triu_indices(trace.n_nodes, k=1)]
    mean_rate = float(upper.mean())
    rate_cv = float(upper.std() / mean_rate) if mean_rate > 0 else 0.0
    gaps = inter_contact_times(trace)
    bursty = burstiness(gaps) if len(gaps) >= 2 else 0.0
    return TraceStats(
        n_nodes=trace.n_nodes,
        n_events=len(trace),
        duration=trace.duration,
        mean_pair_rate=trace.mean_pair_rate,
        rate_cv=rate_cv,
        disconnected_pair_fraction=float(np.mean(upper == 0)),
        burstiness=bursty,
    )


def select_best_covered(trace: ContactTrace, n_keep: int) -> ContactTrace:
    """Keep the *n_keep* nodes with the most contacts, relabeled densely.

    Reproduces the paper's pre-processing step: "to remove bias from
    poorly connected nodes, we selected the contacts for the 50
    participants with the longest measurement periods".
    """
    if not 2 <= n_keep <= trace.n_nodes:
        raise TraceFormatError(
            f"n_keep must be in [2, {trace.n_nodes}], got {n_keep}"
        )
    counts = trace.node_contact_counts()
    keep = np.argsort(-counts, kind="stable")[:n_keep]
    return trace.select_nodes(sorted(int(n) for n in keep))
