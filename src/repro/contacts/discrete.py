"""Discrete-time (slotted Bernoulli) contact model — paper Section 3.4.

In the discrete model the system evolves in slots of length ``delta``; in
each slot every pair ``(m, n)`` meets independently with probability
``mu_{m,n} * delta``.  As ``delta -> 0`` this approaches the continuous
Poisson model, a convergence the test suite verifies.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..types import SeedLike, as_rng
from .trace import ContactTrace

__all__ = ["bernoulli_slot_trace"]


def bernoulli_slot_trace(
    n_nodes: int,
    rate: float,
    delta: float,
    n_slots: int,
    seed: SeedLike = None,
) -> ContactTrace:
    """Sample a homogeneous slotted trace (contact prob ``rate*delta``).

    Contacts of slot ``k`` are stamped at the end of the slot,
    ``(k+1)*delta``, matching the paper's convention that a request
    fulfilled within the first slot gains ``h(delta)``.
    """
    if n_nodes < 2:
        raise ConfigurationError(f"need >= 2 nodes, got {n_nodes}")
    if delta <= 0 or n_slots <= 0:
        raise ConfigurationError("delta and n_slots must be > 0")
    prob = rate * delta
    if not 0 < prob <= 1:
        raise ConfigurationError(
            f"per-slot contact probability rate*delta = {prob} not in (0, 1]"
        )
    rng = as_rng(seed)

    iu = np.triu_indices(n_nodes, k=1)
    n_pairs = len(iu[0])
    # Number of meeting pairs per slot is Binomial(n_pairs, prob); sampling
    # counts then pairs avoids materializing an (n_slots, n_pairs) matrix.
    counts = rng.binomial(n_pairs, prob, size=n_slots)
    total = int(counts.sum())
    slot_of_event = np.repeat(np.arange(n_slots), counts)
    times = (slot_of_event + 1) * delta
    # Within a slot, meeting pairs are distinct; sample without replacement
    # per slot (loop only over non-empty slots).
    node_a = np.empty(total, dtype=np.int64)
    node_b = np.empty(total, dtype=np.int64)
    cursor = 0
    for slot_count in counts:
        if slot_count == 0:
            continue
        chosen = rng.choice(n_pairs, size=slot_count, replace=False)
        node_a[cursor : cursor + slot_count] = iu[0][chosen]
        node_b[cursor : cursor + slot_count] = iu[1][chosen]
        cursor += slot_count
    return ContactTrace(
        times=times.astype(float),
        node_a=node_a,
        node_b=node_b,
        n_nodes=n_nodes,
        duration=n_slots * delta,
    )
