"""Synthetic conference trace — the Infocom '06 substitute.

The paper evaluates on Bluetooth sightings among Infocom '06 attendees
(3 days, 50 best-covered of 73 participants).  That data set is not
redistributable, so this generator reproduces the two statistical axes the
paper attributes its trace effects to (Section 6.3):

* **heterogeneous contact rates** — per-node "sociability" weights are
  log-normal; a pair's base intensity is proportional to the product of
  its endpoints' weights;
* **complex time statistics** — a strong diurnal on/off cycle (conference
  hours vs. night) and heavy-tailed (Pareto) inter-contact gaps, giving
  bursty contact trains instead of memoryless ones.

Each pair's events are a Pareto-renewal process warped through the inverse
of the cumulative diurnal intensity, so expected per-pair counts match the
target rates exactly while gaps stay heavy-tailed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import ConfigurationError
from ...types import FloatArray, SeedLike, as_rng
from ..trace import ContactTrace

__all__ = ["ConferenceTraceConfig", "conference_trace"]

_MINUTES_PER_DAY = 1440.0


@dataclass(frozen=True)
class ConferenceTraceConfig:
    """Parameters of the synthetic conference trace (times in minutes)."""

    n_nodes: int = 50
    n_days: int = 3
    #: Average contacts per pair per minute over the whole trace.
    mean_pair_rate: float = 0.007
    #: Conference hours (minutes after midnight) when activity is high.
    day_start: float = 8 * 60.0
    day_end: float = 20 * 60.0
    #: Night activity as a fraction of daytime intensity.
    night_activity: float = 0.05
    #: Std-dev of log-normal per-node sociability (0 = homogeneous rates).
    sociability_sigma: float = 0.75
    #: Pareto (Lomax) shape of renewal gaps; < 2 gives bursty trains.
    pareto_shape: float = 1.5

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ConfigurationError(f"need >= 2 nodes, got {self.n_nodes}")
        if self.n_days <= 0:
            raise ConfigurationError(f"n_days must be > 0, got {self.n_days}")
        if self.mean_pair_rate <= 0:
            raise ConfigurationError("mean_pair_rate must be > 0")
        if not 0 <= self.day_start < self.day_end <= _MINUTES_PER_DAY:
            raise ConfigurationError("need 0 <= day_start < day_end <= 1440")
        if not 0 < self.night_activity <= 1:
            raise ConfigurationError("night_activity must be in (0, 1]")
        if self.sociability_sigma < 0:
            raise ConfigurationError("sociability_sigma must be >= 0")
        if self.pareto_shape <= 1:
            raise ConfigurationError(
                "pareto_shape must be > 1 so gaps have a finite mean"
            )

    @property
    def duration(self) -> float:
        """Total trace length in minutes."""
        return self.n_days * _MINUTES_PER_DAY


def conference_trace(
    config: ConferenceTraceConfig = ConferenceTraceConfig(),
    seed: SeedLike = None,
) -> ContactTrace:
    """Sample a synthetic conference trace per *config*."""
    rng = as_rng(seed)
    n = config.n_nodes

    # Per-pair base intensities from node sociability, normalized so the
    # mean pair rate matches the target exactly.
    sociability = rng.lognormal(0.0, config.sociability_sigma, size=n)
    iu = np.triu_indices(n, k=1)
    pair_weights = sociability[iu[0]] * sociability[iu[1]]
    pair_rates = pair_weights * (
        config.mean_pair_rate / pair_weights.mean()
    )

    knot_t, knot_mass = _diurnal_cumulative(config)
    total_mass = knot_mass[-1]  # integral of the (unit-mean) profile

    times_parts = []
    a_parts = []
    b_parts = []
    shape = config.pareto_shape
    for k in range(len(pair_rates)):
        # Renewal process with unit-mean Pareto gaps in "operational time"
        # s = rate_k * Lambda(t), then warped back through the inverse
        # cumulative diurnal intensity.  The operational span is
        # rate_k * Lambda(duration) = rate_k * total_mass, so the expected
        # event count is exactly rate_k * duration.
        span = pair_rates[k] * total_mass
        arrivals = _renewal_arrivals(rng, shape, span)
        if len(arrivals) == 0:
            continue
        event_times = np.interp(arrivals / pair_rates[k], knot_mass, knot_t)
        times_parts.append(event_times)
        a_parts.append(np.full(len(event_times), iu[0][k], dtype=np.int64))
        b_parts.append(np.full(len(event_times), iu[1][k], dtype=np.int64))

    if times_parts:
        times = np.concatenate(times_parts)
        node_a = np.concatenate(a_parts)
        node_b = np.concatenate(b_parts)
        order = np.argsort(times, kind="stable")
        times, node_a, node_b = times[order], node_a[order], node_b[order]
    else:
        times = np.empty(0)
        node_a = np.empty(0, dtype=np.int64)
        node_b = np.empty(0, dtype=np.int64)
    return ContactTrace(
        times=times,
        node_a=node_a,
        node_b=node_b,
        n_nodes=n,
        duration=config.duration,
    )


def _diurnal_cumulative(config: ConferenceTraceConfig) -> tuple:
    """Piecewise-linear cumulative diurnal profile over the whole trace.

    The instantaneous profile is 1 during conference hours and
    ``night_activity`` otherwise, rescaled to integrate to ``duration``
    (unit mean), so pair rates keep their nominal meaning.
    """
    knots = [0.0]
    for day in range(config.n_days):
        base = day * _MINUTES_PER_DAY
        for point in (config.day_start, config.day_end, _MINUTES_PER_DAY):
            t = base + point
            if t > knots[-1]:
                knots.append(t)
    knot_t = np.asarray(knots)

    def intensity(t: float) -> float:
        tod = t % _MINUTES_PER_DAY
        return 1.0 if config.day_start <= tod < config.day_end else config.night_activity

    # Integrate the piecewise-constant profile between knots.
    masses = [0.0]
    for left, right in zip(knot_t[:-1], knot_t[1:]):
        midpoint = (left + right) / 2.0
        masses.append(masses[-1] + intensity(midpoint) * (right - left))
    knot_mass = np.asarray(masses)
    # Rescale to unit mean.
    knot_mass *= config.duration / knot_mass[-1]
    return knot_t, knot_mass


def _renewal_arrivals(
    rng: np.random.Generator, shape: float, span: float
) -> FloatArray:
    """Arrival times of a unit-rate Pareto renewal process on ``[0, span]``.

    Gaps are Lomax(shape) scaled to unit mean; batches are drawn until the
    cumulative sum crosses *span*.
    """
    if span <= 0:
        return np.empty(0)
    scale = shape - 1.0  # unit-mean Lomax
    batch = max(16, int(span * 2))
    gaps = rng.pareto(shape, size=batch) * scale
    arrivals = np.cumsum(gaps)
    while arrivals[-1] < span:
        gaps = rng.pareto(shape, size=batch) * scale
        arrivals = np.concatenate([arrivals, arrivals[-1] + np.cumsum(gaps)])
    return arrivals[arrivals < span]
