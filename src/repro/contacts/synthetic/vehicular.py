"""Synthetic vehicular trace — the Cabspotting substitute.

The paper extracts contacts from a day of San Francisco taxicab GPS data,
with two cabs "in contact whenever they are less than 200 m apart".  That
data set is not available offline, so this generator reproduces the same
construction on synthetic cab movement: random-waypoint mobility over a
city-scale area, positions sampled every few seconds, and an encounter
event whenever a pair enters the 200 m range
(:func:`repro.mobility.extract_contacts`).

The result shares the properties the paper leans on: strongly
heterogeneous pair rates (cabs that roam the same region meet often),
bursty encounter trains, and a large fraction of pairs that rarely meet.
Times in the returned trace are in **minutes** for consistency with the
rest of the library.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import ConfigurationError
from ...mobility import RandomWaypointModel, extract_contacts
from ...types import SeedLike, as_rng
from ..trace import ContactTrace

__all__ = ["VehicularTraceConfig", "vehicular_trace"]


@dataclass(frozen=True)
class VehicularTraceConfig:
    """Parameters of the synthetic vehicular trace.

    Distances in meters, durations in hours/seconds as noted; the
    generated trace uses minutes.
    """

    n_nodes: int = 50
    duration_hours: float = 24.0
    area_side_m: float = 6000.0
    speed_min_mps: float = 5.0
    speed_max_mps: float = 15.0
    pause_min_s: float = 0.0
    pause_max_s: float = 300.0
    contact_radius_m: float = 200.0
    sample_interval_s: float = 15.0
    #: Std-dev of each cab's home territory (meters); ``None`` disables
    #: territories and gives classic uniform random-waypoint.
    home_zone_std_m: float = 1500.0

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ConfigurationError(f"need >= 2 nodes, got {self.n_nodes}")
        if self.duration_hours <= 0:
            raise ConfigurationError("duration_hours must be > 0")
        if self.area_side_m <= 0:
            raise ConfigurationError("area_side_m must be > 0")
        if self.contact_radius_m <= 0:
            raise ConfigurationError("contact_radius_m must be > 0")
        if self.sample_interval_s <= 0:
            raise ConfigurationError("sample_interval_s must be > 0")

    @property
    def duration_minutes(self) -> float:
        """Trace length in minutes."""
        return self.duration_hours * 60.0


def vehicular_trace(
    config: VehicularTraceConfig = VehicularTraceConfig(),
    seed: SeedLike = None,
) -> ContactTrace:
    """Sample a synthetic vehicular trace per *config*."""
    rng = as_rng(seed)
    model = RandomWaypointModel(
        width=config.area_side_m,
        height=config.area_side_m,
        speed_min=config.speed_min_mps,
        speed_max=config.speed_max_mps,
        pause_min=config.pause_min_s,
        pause_max=config.pause_max_s,
        home_std=config.home_zone_std_m,
    )
    horizon_s = config.duration_hours * 3600.0
    times_s = np.arange(0.0, horizon_s + config.sample_interval_s, config.sample_interval_s)
    positions = model.sample_positions(config.n_nodes, times_s, seed=rng)
    trace_seconds = extract_contacts(
        positions, times_s, radius=config.contact_radius_m
    )
    return trace_seconds.time_scaled(1.0 / 60.0)
