"""Synthetic substitutes for the paper's real-world traces (DESIGN.md §2)."""

from .conference import ConferenceTraceConfig, conference_trace
from .memoryless import homogenized_poisson, rate_matched_poisson
from .vehicular import VehicularTraceConfig, vehicular_trace

__all__ = [
    "ConferenceTraceConfig",
    "conference_trace",
    "VehicularTraceConfig",
    "vehicular_trace",
    "rate_matched_poisson",
    "homogenized_poisson",
]
