"""Memoryless control traces derived from an arbitrary trace.

Section 6.3 / Figure 5(c): the paper compares results on the actual trace
with "a synthetic trace where contact rates of all pairs are identical but
contacts are assumed to follow memoryless time statistics".  Two controls
are provided so both axes — rate heterogeneity and time statistics — can
be removed independently:

* :func:`homogenized_poisson` — identical per-pair rates, memoryless
  (the paper's Fig. 5(c) control: removes both axes);
* :func:`rate_matched_poisson` — per-pair rates preserved, memoryless
  (removes time statistics only; isolates heterogeneity per se).
"""

from __future__ import annotations

from typing import Optional

from ...types import SeedLike
from ..poisson import heterogeneous_poisson_trace, homogeneous_poisson_trace
from ..stats import pair_rate_matrix
from ..trace import ContactTrace

__all__ = ["rate_matched_poisson", "homogenized_poisson"]


def rate_matched_poisson(
    trace: ContactTrace,
    seed: SeedLike = None,
    duration: Optional[float] = None,
) -> ContactTrace:
    """Poisson trace with the same per-pair rates as *trace*.

    Rates are the maximum-likelihood estimates ``count / duration``; pairs
    that never meet in *trace* never meet in the control either.
    """
    rates = pair_rate_matrix(trace)
    return heterogeneous_poisson_trace(
        rates, duration=duration or trace.duration, seed=seed
    )


def homogenized_poisson(
    trace: ContactTrace,
    seed: SeedLike = None,
    duration: Optional[float] = None,
) -> ContactTrace:
    """Poisson trace with identical pair rates matching *trace*'s mean."""
    return homogeneous_poisson_trace(
        n_nodes=trace.n_nodes,
        rate=trace.mean_pair_rate,
        duration=duration or trace.duration,
        seed=seed,
    )
