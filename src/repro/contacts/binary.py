"""Binary on-disk contact traces: raw columns plus a JSON header.

The text formats (:mod:`repro.contacts.io`) parse every row through
Python — fine for conference-scale traces, prohibitive at the 10^8-event
vehicular scales the columnar pipeline targets.  This module stores the
three trace columns as raw little-endian arrays next to a small JSON
header::

    trace.ctb/
        header.json   {"format": "repro-binary-trace", "version": 1, ...}
        times.f8      float64 contact times, non-decreasing
        node_a.i8     int64 endpoint ids, canonical node_a < node_b
        node_b.i8

Loading memory-maps the columns (``np.memmap``, read-only), so a trace
far larger than RAM opens in milliseconds and the simulator streams it
chunk by chunk; :class:`BinaryTraceWriter` appends chunks incrementally,
so generators never hold the full event set either.  The byte content
is exactly the in-memory column content — converting a CSV/JSONL trace
to binary preserves its simcache fingerprint.
"""

from __future__ import annotations

import json
import os
from types import TracebackType
from typing import BinaryIO, Dict, Optional, Type, Union

import numpy as np

from ..errors import TraceFormatError
from ..types import FloatArray, IntArray
from .trace import ContactTrace

__all__ = [
    "BINARY_FORMAT_NAME",
    "BinaryTraceWriter",
    "binary_trace_metadata",
    "is_binary_trace",
    "load_binary",
    "save_binary",
]

PathLike = Union[str, "os.PathLike[str]"]

BINARY_FORMAT_NAME = "repro-binary-trace"
_HEADER_FILE = "header.json"
_COLUMN_FILES = {
    "times": ("times.f8", "<f8"),
    "node_a": ("node_a.i8", "<i8"),
    "node_b": ("node_b.i8", "<i8"),
}
#: Events validated per block when checking a loaded trace.
_VALIDATE_BLOCK = 1 << 22


def is_binary_trace(path: PathLike) -> bool:
    """True when *path* looks like a binary trace directory."""
    return os.path.isdir(path) and os.path.isfile(
        os.path.join(path, _HEADER_FILE)
    )


class BinaryTraceWriter:
    """Incrementally write a binary trace, one column chunk at a time.

    Chunks must arrive in time order; each ``append`` validates the
    incoming columns (finite non-decreasing times continuing the
    previous chunk, ids in range) and canonicalizes ``node_a < node_b``
    before writing, so a finished directory always loads cleanly.  Use
    as a context manager or call :meth:`close` explicitly — the header
    is only written on close, which is what makes a directory complete.
    """

    def __init__(
        self,
        path: PathLike,
        *,
        n_nodes: int,
        duration: float,
        metadata: Optional[Dict[str, str]] = None,
    ) -> None:
        if n_nodes < 2:
            raise TraceFormatError(f"need >= 2 nodes, got {n_nodes}")
        if duration <= 0:
            raise TraceFormatError(
                f"duration must be > 0, got {duration}"
            )
        if metadata is not None and not all(
            isinstance(k, str) and isinstance(v, str)
            for k, v in metadata.items()
        ):
            raise TraceFormatError("metadata must map str to str")
        self.path = os.fspath(path)
        self.metadata: Dict[str, str] = dict(metadata or {})
        self.n_nodes = int(n_nodes)
        self.duration = float(duration)
        self.n_events = 0
        self._last_time = -np.inf
        os.makedirs(self.path, exist_ok=True)
        self._handles: Dict[str, BinaryIO] = {}
        try:
            for column, (filename, _) in _COLUMN_FILES.items():
                self._handles[column] = open(
                    os.path.join(self.path, filename), "wb"
                )
        except OSError:
            self._close_handles()
            raise
        self._closed = False

    def append(
        self,
        times: FloatArray,
        node_a: IntArray,
        node_b: IntArray,
    ) -> None:
        """Validate, canonicalize, and write one chunk of contacts."""
        if self._closed:
            raise TraceFormatError("writer is closed")
        t = np.ascontiguousarray(times, dtype="<f8")
        a = np.ascontiguousarray(node_a, dtype="<i8")
        b = np.ascontiguousarray(node_b, dtype="<i8")
        if not (len(t) == len(a) == len(b)):
            raise TraceFormatError("times/node_a/node_b lengths differ")
        if len(t) == 0:
            return
        if not np.all(np.isfinite(t)):
            raise TraceFormatError("contact times must be finite")
        if t[0] < self._last_time or np.any(np.diff(t) < 0):
            raise TraceFormatError(
                "contact times must be non-decreasing across chunks"
            )
        if t[0] < 0 or t[-1] > self.duration:
            raise TraceFormatError(
                "contact times must lie in [0, duration]"
            )
        if np.any(a == b):
            raise TraceFormatError("self-contacts are not allowed")
        if min(a.min(), b.min()) < 0 or max(a.max(), b.max()) >= self.n_nodes:
            raise TraceFormatError("node ids must lie in [0, n_nodes)")
        swap = a > b
        if np.any(swap):
            a, b = np.where(swap, b, a), np.where(swap, a, b)
            a = np.ascontiguousarray(a, dtype="<i8")
            b = np.ascontiguousarray(b, dtype="<i8")
        self._handles["times"].write(t.tobytes())
        self._handles["node_a"].write(a.tobytes())
        self._handles["node_b"].write(b.tobytes())
        self.n_events += len(t)
        self._last_time = float(t[-1])

    def close(self) -> None:
        """Flush the columns and write the header, completing the trace."""
        if self._closed:
            return
        self._close_handles()
        header = {
            "format": BINARY_FORMAT_NAME,
            "version": 1,
            "n_nodes": self.n_nodes,
            "duration": repr(self.duration),
            "n_events": self.n_events,
            "columns": {
                column: {"file": filename, "dtype": dtype}
                for column, (filename, dtype) in _COLUMN_FILES.items()
            },
        }
        if self.metadata:
            # Side-channel annotations (e.g. a precomputed simcache
            # fingerprint travelling with a spilled sweep trial); never
            # consulted when loading the columns themselves.
            header["metadata"] = dict(sorted(self.metadata.items()))
        header_path = os.path.join(self.path, _HEADER_FILE)
        with open(header_path, "w", encoding="utf-8") as handle:
            json.dump(header, handle, indent=2)
            handle.write("\n")
        self._closed = True

    def _close_handles(self) -> None:
        for handle in self._handles.values():
            try:
                handle.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    def __enter__(self) -> "BinaryTraceWriter":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        if exc_type is None:
            self.close()
        else:
            self._close_handles()


def save_binary(
    trace: ContactTrace,
    path: PathLike,
    *,
    chunk_events: int = 1 << 22,
    metadata: Optional[Dict[str, str]] = None,
) -> None:
    """Write *trace* to a binary trace directory at *path*.

    *metadata* string pairs land verbatim in the header's
    ``"metadata"`` object (read back with
    :func:`binary_trace_metadata`); the column bytes are unaffected,
    so the trace's content fingerprint is too.
    """
    with BinaryTraceWriter(
        path, n_nodes=trace.n_nodes, duration=trace.duration,
        metadata=metadata,
    ) as writer:
        for chunk in trace.iter_chunks(chunk_events):
            writer.append(chunk.times, chunk.node_a, chunk.node_b)


def binary_trace_metadata(path: PathLike) -> Dict[str, str]:
    """The header's metadata annotations (empty when none were written)."""
    header = _load_header(os.fspath(path))
    metadata = header.get("metadata", {})
    if not isinstance(metadata, dict):
        raise TraceFormatError(f"{path}: header metadata must be an object")
    return {str(k): str(v) for k, v in metadata.items()}


def _load_header(path: str) -> dict:
    header_path = os.path.join(path, _HEADER_FILE)
    try:
        with open(header_path, "r", encoding="utf-8") as handle:
            header = json.load(handle)
    except FileNotFoundError:
        raise TraceFormatError(
            f"{path}: not a binary trace (missing {_HEADER_FILE})"
        ) from None
    except json.JSONDecodeError as error:
        raise TraceFormatError(
            f"{header_path}: invalid JSON header: {error}"
        ) from None
    if (
        not isinstance(header, dict)
        or header.get("format") != BINARY_FORMAT_NAME
    ):
        raise TraceFormatError(
            f"{header_path}: missing {BINARY_FORMAT_NAME} header"
        )
    if header.get("version") != 1:
        raise TraceFormatError(
            f"{header_path}: unsupported version {header.get('version')!r}"
        )
    return header


def _open_column(
    path: str, header: dict, column: str, n_events: int, mmap: bool
) -> np.ndarray:
    filename, dtype = _COLUMN_FILES[column]
    spec = header.get("columns", {}).get(column, {})
    filename = spec.get("file", filename)
    dtype = spec.get("dtype", dtype)
    column_path = os.path.join(path, filename)
    expected = n_events * np.dtype(dtype).itemsize
    try:
        actual = os.path.getsize(column_path)
    except OSError:
        raise TraceFormatError(
            f"{path}: missing column file {filename}"
        ) from None
    if actual != expected:
        raise TraceFormatError(
            f"{column_path}: expected {expected} bytes for "
            f"{n_events} events, found {actual}"
        )
    if n_events == 0:
        return np.empty(0, dtype=dtype)
    if mmap:
        return np.memmap(column_path, dtype=dtype, mode="r")
    return np.fromfile(column_path, dtype=dtype)


def _validate_columns(
    times: np.ndarray,
    node_a: np.ndarray,
    node_b: np.ndarray,
    n_nodes: int,
    duration: float,
) -> None:
    """Block-wise invariant checks that never materialize full columns."""
    previous = -np.inf
    for start in range(0, len(times), _VALIDATE_BLOCK):
        stop = start + _VALIDATE_BLOCK
        t = np.asarray(times[start:stop])
        a = np.asarray(node_a[start:stop])
        b = np.asarray(node_b[start:stop])
        if not np.all(np.isfinite(t)):
            raise TraceFormatError("contact times must be finite")
        if t[0] < previous or np.any(np.diff(t) < 0):
            raise TraceFormatError("contact times must be sorted")
        previous = float(t[-1])
        if t[0] < 0 or t[-1] > duration:
            raise TraceFormatError(
                "contact times must lie in [0, duration]"
            )
        if np.any(a >= b):
            raise TraceFormatError(
                "node pairs must be canonical (node_a < node_b)"
            )
        if a.min() < 0 or b.max() >= n_nodes:
            raise TraceFormatError("node ids must lie in [0, n_nodes)")


def load_binary(
    path: PathLike,
    *,
    mmap: bool = True,
    validate: bool = True,
) -> ContactTrace:
    """Load a binary trace directory written by :class:`BinaryTraceWriter`.

    With ``mmap=True`` (the default) the columns are read-only memory
    maps: opening is O(1) in the trace size and the simulator streams
    the events without ever materializing them.  ``validate`` runs
    block-wise invariant checks (sortedness, canonical pairs, id
    ranges) — cheap vectorized scans whose peak memory is one block.
    """
    path = os.fspath(path)
    header = _load_header(path)
    try:
        n_nodes = int(header["n_nodes"])
        duration = float(header["duration"])
        n_events = int(header["n_events"])
    except (KeyError, TypeError, ValueError):
        raise TraceFormatError(
            f"{path}: header must carry numeric n_nodes/duration/n_events"
        ) from None
    if n_nodes < 2 or duration <= 0 or n_events < 0:
        raise TraceFormatError(
            f"{path}: invalid header values (n_nodes={n_nodes}, "
            f"duration={duration}, n_events={n_events})"
        )
    times = _open_column(path, header, "times", n_events, mmap)
    node_a = _open_column(path, header, "node_a", n_events, mmap)
    node_b = _open_column(path, header, "node_b", n_events, mmap)
    if validate and n_events:
        _validate_columns(times, node_a, node_b, n_nodes, duration)
    return ContactTrace.from_trusted_columns(
        times, node_a, node_b, n_nodes=n_nodes, duration=duration
    )
