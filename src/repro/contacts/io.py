"""Contact-trace file formats.

Two interchangeable on-disk representations:

* **CSV** — one ``time,node_a,node_b`` row per contact, preceded by
  ``# key=value`` header comments carrying ``n_nodes`` and ``duration``.
  This mirrors the flat event lists real data sets (Infocom/CRAWDAD,
  Cabspotting) are distributed as.
* **JSONL** — a metadata object on the first line, one ``[t, a, b]``
  triple per subsequent line.

Both round-trip exactly through :class:`~repro.contacts.trace.ContactTrace`.
"""

from __future__ import annotations

import json
import math
import os
from typing import Dict, List, Tuple, Union

import numpy as np

from ..errors import TraceFormatError
from .trace import ContactTrace

__all__ = [
    "save_csv",
    "load_csv",
    "save_jsonl",
    "load_jsonl",
    "load_interval_format",
]

PathLike = Union[str, "os.PathLike[str]"]


def _parse_event(
    path: PathLike, line_number: int, t_raw: object, a_raw: object, b_raw: object
) -> Tuple[float, int, int]:
    """Validate one contact record; all failures are TraceFormatError.

    Guards corrupt files: non-numeric fields, non-finite or negative
    times, and negative node ids all get a clear, located message rather
    than a bare ``ValueError`` bubbling out of ``float()``/``int()``.
    (Upper-bound id checks need ``n_nodes`` and happen in the loaders.)
    """
    try:
        t = float(t_raw)  # type: ignore[arg-type]
        a = int(a_raw)  # type: ignore[arg-type]
        b = int(b_raw)  # type: ignore[arg-type]
    except (TypeError, ValueError, OverflowError):
        raise TraceFormatError(
            f"{path}:{line_number}: non-numeric contact record "
            f"({t_raw!r}, {a_raw!r}, {b_raw!r})"
        ) from None
    if float(a_raw) != a or float(b_raw) != b:  # type: ignore[arg-type]
        raise TraceFormatError(
            f"{path}:{line_number}: non-integer node id in "
            f"({a_raw!r}, {b_raw!r})"
        )
    if not math.isfinite(t) or t < 0:
        raise TraceFormatError(
            f"{path}:{line_number}: contact time must be finite and >= 0, "
            f"got {t!r}"
        )
    if a < 0 or b < 0:
        raise TraceFormatError(
            f"{path}:{line_number}: negative node id in ({a}, {b})"
        )
    return t, a, b


def _check_node_range(
    path: PathLike, line_number: int, a: int, b: int, n_nodes: int
) -> None:
    if a >= n_nodes or b >= n_nodes:
        raise TraceFormatError(
            f"{path}:{line_number}: node id {max(a, b)} out of range for "
            f"n_nodes={n_nodes}"
        )


def save_csv(trace: ContactTrace, path: PathLike) -> None:
    """Write *trace* to a CSV file with metadata header comments."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# n_nodes={trace.n_nodes}\n")
        handle.write(f"# duration={trace.duration!r}\n")
        handle.write("time,node_a,node_b\n")
        for t, a, b in trace:
            handle.write(f"{t!r},{a},{b}\n")


def load_csv(path: PathLike) -> ContactTrace:
    """Read a trace written by :func:`save_csv`.

    Corrupt rows — non-numeric fields, non-finite times, negative or
    out-of-range node ids — raise :class:`TraceFormatError` with the
    offending line number.
    """
    metadata: Dict[str, str] = {}
    rows: List[Tuple[int, float, int, int]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                body = line[1:].strip()
                if "=" in body:
                    key, _, value = body.partition("=")
                    metadata[key.strip()] = value.strip()
                continue
            if line.startswith("time,"):
                continue  # column header
            fields = line.split(",")
            if len(fields) != 3:
                raise TraceFormatError(
                    f"{path}:{line_number}: malformed CSV row: {line!r}"
                )
            rows.append(
                (line_number,)
                + _parse_event(path, line_number, *fields)
            )
    if "n_nodes" not in metadata or "duration" not in metadata:
        raise TraceFormatError(
            "CSV trace must carry '# n_nodes=' and '# duration=' headers"
        )
    try:
        n_nodes = int(metadata["n_nodes"])
        duration = float(metadata["duration"])
    except ValueError:
        raise TraceFormatError(
            f"{path}: non-numeric n_nodes/duration headers "
            f"({metadata['n_nodes']!r}, {metadata['duration']!r})"
        ) from None
    for line_number, _, a, b in rows:
        _check_node_range(path, line_number, a, b, n_nodes)
    return ContactTrace(
        times=np.asarray([r[1] for r in rows], dtype=float),
        node_a=np.asarray([r[2] for r in rows], dtype=np.int64),
        node_b=np.asarray([r[3] for r in rows], dtype=np.int64),
        n_nodes=n_nodes,
        duration=duration,
    )


def load_interval_format(
    path: PathLike,
    *,
    time_scale: float = 1.0,
    comment_prefix: str = "#",
) -> ContactTrace:
    """Read a CRAWDAD/Haggle-style contact-interval list.

    The common distribution format of real opportunistic data sets
    (including the Infocom sightings the paper uses) is one whitespace-
    separated record per encounter::

        <node_a> <node_b> <t_start> <t_end> [extra columns ignored]

    Node ids may be arbitrary integers (1-based, sparse); they are
    remapped to dense 0-based ids in first-appearance order.  Each
    interval becomes one instantaneous contact at ``t_start`` (the
    paper's meeting semantics); times are shifted so the trace starts at
    0 and multiplied by *time_scale* (e.g. ``1/60`` to convert seconds
    to minutes).  The observation window ends at the latest interval
    end.
    """
    if time_scale <= 0:
        raise TraceFormatError(f"time_scale must be > 0, got {time_scale}")
    raw_a: List[int] = []
    raw_b: List[int] = []
    starts: List[float] = []
    ends: List[float] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith(comment_prefix):
                continue
            fields = line.split()
            if len(fields) < 4:
                raise TraceFormatError(
                    f"{path}:{line_number}: expected "
                    f"'a b t_start t_end', got {line!r}"
                )
            try:
                a, b = int(fields[0]), int(fields[1])
                t_start, t_end = float(fields[2]), float(fields[3])
            except ValueError as error:
                raise TraceFormatError(
                    f"{path}:{line_number}: {error}"
                ) from None
            if a == b:
                continue  # some data sets log self-sightings; drop them
            if t_end < t_start:
                raise TraceFormatError(
                    f"{path}:{line_number}: interval ends before it starts"
                )
            raw_a.append(a)
            raw_b.append(b)
            starts.append(t_start)
            ends.append(t_end)
    if not starts:
        raise TraceFormatError(f"{path}: no contact records found")

    dense: Dict[int, int] = {}
    for raw_id in [*raw_a, *raw_b]:
        if raw_id not in dense:
            dense[raw_id] = len(dense)
    origin = min(starts)
    times = (np.asarray(starts) - origin) * time_scale
    duration = (max(ends) - origin) * time_scale
    if duration <= 0:
        duration = float(times.max()) + time_scale  # degenerate window
    order = np.argsort(times, kind="stable")
    return ContactTrace(
        times=times[order],
        node_a=np.asarray([dense[a] for a in raw_a], dtype=np.int64)[order],
        node_b=np.asarray([dense[b] for b in raw_b], dtype=np.int64)[order],
        n_nodes=len(dense),
        duration=float(duration),
    )


def save_jsonl(trace: ContactTrace, path: PathLike) -> None:
    """Write *trace* as JSON lines: a metadata object then event triples."""
    with open(path, "w", encoding="utf-8") as handle:
        header = {
            "format": "repro-contact-trace",
            "version": 1,
            "n_nodes": trace.n_nodes,
            "duration": trace.duration,
            "n_events": len(trace),
        }
        handle.write(json.dumps(header) + "\n")
        for t, a, b in trace:
            handle.write(json.dumps([t, a, b]) + "\n")


def load_jsonl(path: PathLike) -> ContactTrace:
    """Read a trace written by :func:`save_jsonl`.

    Corrupt lines — invalid JSON, wrong arity, non-numeric fields,
    non-finite times, negative or out-of-range node ids — raise
    :class:`TraceFormatError` with the offending line number.
    """
    with open(path, "r", encoding="utf-8") as handle:
        first = handle.readline()
        if not first:
            raise TraceFormatError("empty JSONL trace file")
        try:
            header = json.loads(first)
        except json.JSONDecodeError as error:
            raise TraceFormatError(
                f"{path}:1: invalid JSON header: {error}"
            ) from None
        if (
            not isinstance(header, dict)
            or header.get("format") != "repro-contact-trace"
        ):
            raise TraceFormatError("missing repro-contact-trace header")
        try:
            n_nodes = int(header["n_nodes"])
            duration = float(header["duration"])
        except (KeyError, TypeError, ValueError):
            raise TraceFormatError(
                f"{path}:1: header must carry numeric n_nodes and duration"
            ) from None
        times: List[float] = []
        node_a: List[int] = []
        node_b: List[int] = []
        for line_number, raw in enumerate(handle, start=2):
            line = raw.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise TraceFormatError(
                    f"{path}:{line_number}: invalid JSON: {error}"
                ) from None
            if not isinstance(record, (list, tuple)) or len(record) != 3:
                raise TraceFormatError(
                    f"{path}:{line_number}: expected a [t, a, b] triple, "
                    f"got {record!r}"
                )
            t, a, b = _parse_event(path, line_number, *record)
            _check_node_range(path, line_number, a, b, n_nodes)
            times.append(t)
            node_a.append(a)
            node_b.append(b)
    return ContactTrace(
        times=np.asarray(times, dtype=float),
        node_a=np.asarray(node_a, dtype=np.int64),
        node_b=np.asarray(node_b, dtype=np.int64),
        n_nodes=n_nodes,
        duration=duration,
    )
