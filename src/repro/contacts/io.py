"""Contact-trace file formats.

Two interchangeable on-disk representations:

* **CSV** — one ``time,node_a,node_b`` row per contact, preceded by
  ``# key=value`` header comments carrying ``n_nodes`` and ``duration``.
  This mirrors the flat event lists real data sets (Infocom/CRAWDAD,
  Cabspotting) are distributed as.
* **JSONL** — a metadata object on the first line, one ``[t, a, b]``
  triple per subsequent line.

Both round-trip exactly through :class:`~repro.contacts.trace.ContactTrace`.
"""

from __future__ import annotations

import json
import math
import os
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..errors import TraceFormatError
from .trace import ContactTrace

__all__ = [
    "detect_trace_format",
    "load_contact_trace",
    "save_csv",
    "load_csv",
    "save_jsonl",
    "load_jsonl",
    "load_interval_format",
]

PathLike = Union[str, "os.PathLike[str]"]


def _parse_event(
    path: PathLike, line_number: int, t_raw: object, a_raw: object, b_raw: object
) -> Tuple[float, int, int]:
    """Validate one contact record; all failures are TraceFormatError.

    Guards corrupt files: non-numeric fields, non-finite or negative
    times, and negative node ids all get a clear, located message rather
    than a bare ``ValueError`` bubbling out of ``float()``/``int()``.
    (Upper-bound id checks need ``n_nodes`` and happen in the loaders.)
    """
    try:
        t = float(t_raw)  # type: ignore[arg-type]
        a = int(a_raw)  # type: ignore[arg-type]
        b = int(b_raw)  # type: ignore[arg-type]
    except (TypeError, ValueError, OverflowError):
        raise TraceFormatError(
            f"{path}:{line_number}: non-numeric contact record "
            f"({t_raw!r}, {a_raw!r}, {b_raw!r})"
        ) from None
    if float(a_raw) != a or float(b_raw) != b:  # type: ignore[arg-type]
        raise TraceFormatError(
            f"{path}:{line_number}: non-integer node id in "
            f"({a_raw!r}, {b_raw!r})"
        )
    if not math.isfinite(t) or t < 0:
        raise TraceFormatError(
            f"{path}:{line_number}: contact time must be finite and >= 0, "
            f"got {t!r}"
        )
    if a < 0 or b < 0:
        raise TraceFormatError(
            f"{path}:{line_number}: negative node id in ({a}, {b})"
        )
    return t, a, b


def _check_node_range(
    path: PathLike, line_number: int, a: int, b: int, n_nodes: int
) -> None:
    if a >= n_nodes or b >= n_nodes:
        raise TraceFormatError(
            f"{path}:{line_number}: node id {max(a, b)} out of range for "
            f"n_nodes={n_nodes}"
        )


def save_csv(trace: ContactTrace, path: PathLike) -> None:
    """Write *trace* to a CSV file with metadata header comments."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# n_nodes={trace.n_nodes}\n")
        handle.write(f"# duration={trace.duration!r}\n")
        handle.write("time,node_a,node_b\n")
        for t, a, b in trace:
            handle.write(f"{t!r},{a},{b}\n")


class _ColumnBuffers:
    """Geometrically growing column buffers for streaming loaders.

    Replaces the old per-row tuple list: validated values land directly
    in NumPy arrays, so loading never materializes one Python object
    per event beyond the line being parsed.  Line numbers ride along so
    range checks deferred until ``n_nodes`` is known can still point at
    the offending row.
    """

    def __init__(self) -> None:
        self._capacity = 1024
        self.count = 0
        self.times = np.empty(self._capacity, dtype=float)
        self.node_a = np.empty(self._capacity, dtype=np.int64)
        self.node_b = np.empty(self._capacity, dtype=np.int64)
        self.line_numbers = np.empty(self._capacity, dtype=np.int64)

    def append(self, line_number: int, t: float, a: int, b: int) -> None:
        if self.count == self._capacity:
            self._capacity *= 2
            for name in ("times", "node_a", "node_b", "line_numbers"):
                grown = np.empty(
                    self._capacity, dtype=getattr(self, name).dtype
                )
                grown[: self.count] = getattr(self, name)[: self.count]
                setattr(self, name, grown)
        k = self.count
        self.times[k] = t
        self.node_a[k] = a
        self.node_b[k] = b
        self.line_numbers[k] = line_number
        self.count = k + 1

    def check_node_range(self, path: PathLike, n_nodes: int) -> None:
        """Range-check all buffered ids, reporting the first bad line."""
        a = self.node_a[: self.count]
        b = self.node_b[: self.count]
        bad = np.flatnonzero((a >= n_nodes) | (b >= n_nodes))
        if len(bad):
            k = int(bad[0])
            _check_node_range(
                path,
                int(self.line_numbers[k]),
                int(a[k]),
                int(b[k]),
                n_nodes,
            )


def load_csv(path: PathLike) -> ContactTrace:
    """Read a trace written by :func:`save_csv`.

    Corrupt rows — non-numeric fields, non-finite times, negative or
    out-of-range node ids — raise :class:`TraceFormatError` with the
    offending line number.
    """
    metadata: Dict[str, str] = {}
    buffers = _ColumnBuffers()
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                body = line[1:].strip()
                if "=" in body:
                    key, _, value = body.partition("=")
                    metadata[key.strip()] = value.strip()
                continue
            if line.startswith("time,"):
                continue  # column header
            fields = line.split(",")
            if len(fields) != 3:
                raise TraceFormatError(
                    f"{path}:{line_number}: malformed CSV row: {line!r}"
                )
            buffers.append(
                line_number, *_parse_event(path, line_number, *fields)
            )
    if "n_nodes" not in metadata or "duration" not in metadata:
        raise TraceFormatError(
            "CSV trace must carry '# n_nodes=' and '# duration=' headers"
        )
    try:
        n_nodes = int(metadata["n_nodes"])
        duration = float(metadata["duration"])
    except ValueError:
        raise TraceFormatError(
            f"{path}: non-numeric n_nodes/duration headers "
            f"({metadata['n_nodes']!r}, {metadata['duration']!r})"
        ) from None
    buffers.check_node_range(path, n_nodes)
    return ContactTrace(
        times=buffers.times[: buffers.count].copy(),
        node_a=buffers.node_a[: buffers.count].copy(),
        node_b=buffers.node_b[: buffers.count].copy(),
        n_nodes=n_nodes,
        duration=duration,
    )


def load_interval_format(
    path: PathLike,
    *,
    time_scale: float = 1.0,
    comment_prefix: str = "#",
) -> ContactTrace:
    """Read a CRAWDAD/Haggle-style contact-interval list.

    The common distribution format of real opportunistic data sets
    (including the Infocom sightings the paper uses) is one whitespace-
    separated record per encounter::

        <node_a> <node_b> <t_start> <t_end> [extra columns ignored]

    Node ids may be arbitrary integers (1-based, sparse); they are
    remapped to dense 0-based ids in first-appearance order.  Each
    interval becomes one instantaneous contact at ``t_start`` (the
    paper's meeting semantics); times are shifted so the trace starts at
    0 and multiplied by *time_scale* (e.g. ``1/60`` to convert seconds
    to minutes).  The observation window ends at the latest interval
    end.
    """
    if time_scale <= 0:
        raise TraceFormatError(f"time_scale must be > 0, got {time_scale}")
    raw_a: List[int] = []
    raw_b: List[int] = []
    starts: List[float] = []
    ends: List[float] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith(comment_prefix):
                continue
            fields = line.split()
            if len(fields) < 4:
                raise TraceFormatError(
                    f"{path}:{line_number}: expected "
                    f"'a b t_start t_end', got {line!r}"
                )
            try:
                a, b = int(fields[0]), int(fields[1])
                t_start, t_end = float(fields[2]), float(fields[3])
            except ValueError as error:
                raise TraceFormatError(
                    f"{path}:{line_number}: {error}"
                ) from None
            if a == b:
                continue  # some data sets log self-sightings; drop them
            if t_end < t_start:
                raise TraceFormatError(
                    f"{path}:{line_number}: interval ends before it starts"
                )
            raw_a.append(a)
            raw_b.append(b)
            starts.append(t_start)
            ends.append(t_end)
    if not starts:
        raise TraceFormatError(f"{path}: no contact records found")

    dense: Dict[int, int] = {}
    for raw_id in [*raw_a, *raw_b]:
        if raw_id not in dense:
            dense[raw_id] = len(dense)
    origin = min(starts)
    times = (np.asarray(starts) - origin) * time_scale
    duration = (max(ends) - origin) * time_scale
    if duration <= 0:
        duration = float(times.max()) + time_scale  # degenerate window
    order = np.argsort(times, kind="stable")
    return ContactTrace(
        times=times[order],
        node_a=np.asarray([dense[a] for a in raw_a], dtype=np.int64)[order],
        node_b=np.asarray([dense[b] for b in raw_b], dtype=np.int64)[order],
        n_nodes=len(dense),
        duration=float(duration),
    )


def save_jsonl(trace: ContactTrace, path: PathLike) -> None:
    """Write *trace* as JSON lines: a metadata object then event triples."""
    with open(path, "w", encoding="utf-8") as handle:
        header = {
            "format": "repro-contact-trace",
            "version": 1,
            "n_nodes": trace.n_nodes,
            "duration": trace.duration,
            "n_events": len(trace),
        }
        handle.write(json.dumps(header) + "\n")
        for t, a, b in trace:
            handle.write(json.dumps([t, a, b]) + "\n")


def load_jsonl(path: PathLike) -> ContactTrace:
    """Read a trace written by :func:`save_jsonl`.

    Corrupt lines — invalid JSON, wrong arity, non-numeric fields,
    non-finite times, negative or out-of-range node ids — raise
    :class:`TraceFormatError` with the offending line number.
    """
    with open(path, "r", encoding="utf-8") as handle:
        first = handle.readline()
        if not first:
            raise TraceFormatError("empty JSONL trace file")
        try:
            header = json.loads(first)
        except json.JSONDecodeError as error:
            raise TraceFormatError(
                f"{path}:1: invalid JSON header: {error}"
            ) from None
        if (
            not isinstance(header, dict)
            or header.get("format") != "repro-contact-trace"
        ):
            raise TraceFormatError("missing repro-contact-trace header")
        try:
            n_nodes = int(header["n_nodes"])
            duration = float(header["duration"])
        except (KeyError, TypeError, ValueError):
            raise TraceFormatError(
                f"{path}:1: header must carry numeric n_nodes and duration"
            ) from None
        buffers = _ColumnBuffers()
        for line_number, raw in enumerate(handle, start=2):
            line = raw.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise TraceFormatError(
                    f"{path}:{line_number}: invalid JSON: {error}"
                ) from None
            if not isinstance(record, (list, tuple)) or len(record) != 3:
                raise TraceFormatError(
                    f"{path}:{line_number}: expected a [t, a, b] triple, "
                    f"got {record!r}"
                )
            t, a, b = _parse_event(path, line_number, *record)
            _check_node_range(path, line_number, a, b, n_nodes)
            buffers.append(line_number, t, a, b)
    return ContactTrace(
        times=buffers.times[: buffers.count].copy(),
        node_a=buffers.node_a[: buffers.count].copy(),
        node_b=buffers.node_b[: buffers.count].copy(),
        n_nodes=n_nodes,
        duration=duration,
    )


def detect_trace_format(path: PathLike) -> Optional[str]:
    """Best-effort sniff of a contact-trace container at *path*.

    Returns ``"binary"``, ``"csv"``, ``"jsonl"``, or ``"interval"`` when
    *path* looks like one of the supported contact-trace formats, and
    ``None`` when it does not (e.g. a telemetry event log).  A path
    that does not exist at all raises :class:`TraceFormatError` rather
    than being reported as merely unrecognized.
    """
    from .binary import is_binary_trace

    if is_binary_trace(path):
        return "binary"
    if not os.path.exists(path):
        raise TraceFormatError(f"{path}: no such file or directory")
    if os.path.isdir(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for raw in handle:
                line = raw.strip()
                if not line:
                    continue
                if line.startswith("#"):
                    if "=" in line:
                        return "csv"
                    continue  # interval-format comment: keep sniffing
                if line.startswith("time,"):
                    return "csv"
                if line.startswith("{"):
                    try:
                        header = json.loads(line)
                    except json.JSONDecodeError:
                        return None
                    if (
                        isinstance(header, dict)
                        and header.get("format") == "repro-contact-trace"
                    ):
                        return "jsonl"
                    return None
                fields = line.split()
                if len(fields) >= 4 and "," not in line:
                    return "interval"
                return None
    except (OSError, UnicodeDecodeError):
        return None
    return None


def load_contact_trace(
    path: PathLike, *, fmt: Optional[str] = None
) -> ContactTrace:
    """Load a contact trace in any supported format.

    *fmt* forces a format (``binary``/``csv``/``jsonl``/``interval``);
    when omitted it is sniffed with :func:`detect_trace_format`.
    """
    from .binary import load_binary

    if fmt is None:
        fmt = detect_trace_format(path)
    if fmt == "binary":
        return load_binary(path)
    if fmt == "csv":
        return load_csv(path)
    if fmt == "jsonl":
        return load_jsonl(path)
    if fmt == "interval":
        return load_interval_format(path)
    raise TraceFormatError(
        f"{path}: not a recognized contact-trace format"
    )
