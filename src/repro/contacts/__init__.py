"""Contact traces: containers, I/O, statistics, and generators."""

from .binary import (
    binary_trace_metadata,
    BinaryTraceWriter,
    is_binary_trace,
    load_binary,
    save_binary,
)
from .discrete import bernoulli_slot_trace
from .io import (
    detect_trace_format,
    load_contact_trace,
    load_csv,
    load_interval_format,
    load_jsonl,
    save_csv,
    save_jsonl,
)
from .poisson import heterogeneous_poisson_trace, homogeneous_poisson_trace
from .stats import (
    TraceStats,
    burstiness,
    inter_contact_times,
    pair_rate_matrix,
    select_best_covered,
    summarize,
)
from .trace import ContactTrace

__all__ = [
    "ContactTrace",
    "homogeneous_poisson_trace",
    "heterogeneous_poisson_trace",
    "bernoulli_slot_trace",
    "pair_rate_matrix",
    "inter_contact_times",
    "burstiness",
    "TraceStats",
    "summarize",
    "select_best_covered",
    "save_csv",
    "load_interval_format",
    "load_csv",
    "save_jsonl",
    "load_jsonl",
    "detect_trace_format",
    "load_contact_trace",
    "BinaryTraceWriter",
    "binary_trace_metadata",
    "is_binary_trace",
    "load_binary",
    "save_binary",
]
