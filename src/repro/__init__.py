"""repro — a reproduction of Reich & Chaintreau, "The Age of Impatience:
Optimal Replication Schemes for Opportunistic Networks" (CoNEXT 2009).

The library implements the paper's entire system from scratch:

* :mod:`repro.utility` — delay-utility (impatience) models and the
  Table-1 transforms ``c``, ``phi``, ``psi``;
* :mod:`repro.demand` — content popularity and request arrivals;
* :mod:`repro.contacts` — contact traces: containers, I/O, statistics,
  Poisson/slotted generators, and synthetic conference/vehicular traces;
* :mod:`repro.mobility` — random-waypoint mobility and proximity contact
  extraction (the vehicular substrate);
* :mod:`repro.allocation` — social welfare and the optimal-allocation
  solvers (Theorems 1-2, Property 1, Eq. 7 dynamics);
* :mod:`repro.protocols` — Query Counting Replication with Mandate
  Routing, plus every fixed-allocation competitor;
* :mod:`repro.sim` — the discrete-event opportunistic-caching simulator;
* :mod:`repro.experiments` — scenarios and the harness regenerating every
  table and figure of the paper's evaluation.

Quickstart::

    from repro import (
        DemandModel, StepUtility, homogeneous_poisson_trace,
        generate_requests, SimulationConfig, simulate, QCR,
    )

    demand = DemandModel.pareto(50, omega=1.0, total_rate=4.0)
    trace = homogeneous_poisson_trace(50, rate=0.05, duration=2000, seed=1)
    requests = generate_requests(demand, 50, trace.duration, seed=2)
    config = SimulationConfig(n_items=50, rho=5, utility=StepUtility(10.0))
    result = simulate(trace, requests, config, QCR(config.utility, 0.05))
    print(result.gain_rate, result.fulfillment_ratio)
"""

from .allocation import (
    greedy_heterogeneous,
    greedy_homogeneous,
    heterogeneous_welfare,
    homogeneous_welfare,
    solve_relaxed,
)
from .contacts import (
    ContactTrace,
    heterogeneous_poisson_trace,
    homogeneous_poisson_trace,
)
from .demand import DemandModel, RequestSchedule, generate_requests
from .errors import (
    AllocationError,
    ConfigurationError,
    ReproError,
    SimulationError,
    TraceFormatError,
    UtilityDomainError,
)
from .protocols import (
    QCR,
    PassiveReplication,
    QCRConfig,
    StaticAllocation,
    dom_protocol,
    opt_protocol,
    prop_protocol,
    sqrt_protocol,
    uni_protocol,
)
from .faults import FaultEvent, FaultSchedule
from .sim import Simulation, SimulationConfig, SimulationResult, simulate
from .utility import (
    DelayUtility,
    ExponentialUtility,
    MixtureUtility,
    NegLogUtility,
    PowerUtility,
    StepUtility,
    TabulatedUtility,
    power_family,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # utilities
    "DelayUtility",
    "StepUtility",
    "ExponentialUtility",
    "PowerUtility",
    "NegLogUtility",
    "MixtureUtility",
    "TabulatedUtility",
    "power_family",
    # demand
    "DemandModel",
    "RequestSchedule",
    "generate_requests",
    # contacts
    "ContactTrace",
    "homogeneous_poisson_trace",
    "heterogeneous_poisson_trace",
    # allocation
    "homogeneous_welfare",
    "heterogeneous_welfare",
    "greedy_homogeneous",
    "greedy_heterogeneous",
    "solve_relaxed",
    # protocols
    "QCR",
    "QCRConfig",
    "PassiveReplication",
    "StaticAllocation",
    "uni_protocol",
    "sqrt_protocol",
    "prop_protocol",
    "dom_protocol",
    "opt_protocol",
    # fault injection
    "FaultEvent",
    "FaultSchedule",
    # simulator
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    "simulate",
    # errors
    "ReproError",
    "ConfigurationError",
    "TraceFormatError",
    "AllocationError",
    "UtilityDomainError",
    "SimulationError",
]
