"""Rule plugin registry.

A rule is a subclass of :class:`Rule` registered with the
:func:`register` decorator.  The runner instantiates every registered
rule once per process and calls :meth:`Rule.check` per file with the
parsed module and a :class:`FileContext`.

Rules scope themselves by *logical path* — the path parts below the
package root (``src/repro/sim/engine.py`` → ``("sim", "engine.py")``).
Test fixtures mirror the package layout under ``tests/lint/fixtures/``,
so a fixture at ``fixtures/protocols/bad.py`` exercises the same scoping
as real code in ``src/repro/protocols/``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Sequence, Tuple, Type

from ..errors import ConfigurationError
from .findings import Finding

__all__ = ["FileContext", "Rule", "register", "all_rules", "rules_by_code"]

#: Anchors below which the logical path starts; ``repro`` covers the real
#: package, ``fixtures`` covers the lint test corpus.
_PATH_ANCHORS = ("repro", "fixtures")


def logical_parts(path: Path) -> Tuple[str, ...]:
    """Path parts below the last package anchor (``repro``/``fixtures``).

    The top-level ``benchmarks/`` tree has no package anchor above it;
    it anchors *inclusively* so rules can recognize it by its first
    part regardless of where the repository is checked out.
    """
    parts = path.parts
    for anchor in _PATH_ANCHORS:
        if anchor in parts:
            index = len(parts) - 1 - parts[::-1].index(anchor)
            return parts[index + 1 :]
    if "benchmarks" in parts:
        index = len(parts) - 1 - parts[::-1].index("benchmarks")
        return parts[index:]
    return parts[-1:]


class FileContext:
    """Everything a rule may know about the file under analysis."""

    def __init__(self, path: Path, source: str) -> None:
        self.path = path
        self.source = source
        self.display_path = str(path)
        self.parts = logical_parts(path)

    def in_directory(self, name: str) -> bool:
        """True when the file sits (anywhere) under package dir *name*."""
        return name in self.parts[:-1]

    def matches(self, *suffix: str) -> bool:
        """True when the logical path ends with *suffix* parts."""
        return self.parts[-len(suffix) :] == suffix


class Rule:
    """Base class for lint rules."""

    #: Stable rule code, e.g. ``"RPL001"``.
    code: str = ""
    #: Short kebab-case name used in ``--list-rules``.
    name: str = ""
    #: One-line description of what the rule protects.
    summary: str = ""
    #: Default fix hint attached to findings.
    hint: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        """Path-level scoping; default is every file."""
        return True

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
        hint: str = "",
    ) -> Finding:
        return Finding(
            path=ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
            hint=hint or self.hint,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding *rule_cls* to the global registry."""
    if not rule_cls.code:
        raise ConfigurationError(
            f"rule {rule_cls.__name__} must define a code"
        )
    existing = _REGISTRY.get(rule_cls.code)
    if existing is not None and existing is not rule_cls:
        raise ConfigurationError(
            f"duplicate rule code {rule_cls.code}: "
            f"{existing.__name__} vs {rule_cls.__name__}"
        )
    _REGISTRY[rule_cls.code] = rule_cls
    return rule_cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in code order."""
    from . import rules as _rules  # noqa: F401  (imports register plugins)

    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def rules_by_code(select: Sequence[str]) -> List[Rule]:
    """Instances for the requested codes; unknown codes raise."""
    available = {rule.code: rule for rule in all_rules()}
    unknown = [code for code in select if code not in available]
    if unknown:
        raise ConfigurationError(
            f"unknown rule code(s) {', '.join(unknown)}; "
            f"available: {', '.join(sorted(available))}"
        )
    return [available[code] for code in select]
