"""RPL011 — event kinds are schema constants, not string literals.

Every trace event kind lives in the :mod:`repro.obs.events` registry
(``EVENT_FIELDS``) next to its field schema; call sites name kinds
through the registry's constants (``trace_events.DELIVER``,
``ev.UNIT_CLAIM``, ...).  A string literal at an emit site bypasses
that single source of truth: a typo mints a kind the registry has never
heard of, readers silently skip it, and the whole-program schema-drift
checker (``repro analyze`` RPA003/RPA004) is the only thing left to
notice — after the trace is already written.

This rule catches the drift at the file level, before it compiles into
a trace: any ``*.emit("literal", ...)`` or ``*.log_event("literal",
...)`` outside :mod:`repro.obs` itself is flagged.  The registry module
and its neighbours are exempt — that is where the literals are
*defined* and where sinks forward fully-formed event records.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import FileContext, Rule, register
from ._util import iter_calls

__all__ = ["EventLiteralRule"]

#: Method tails that take an event kind as their first argument.
_EMIT_TAILS = ("emit", "log_event")


@register
class EventLiteralRule(Rule):
    code = "RPL011"
    name = "event-kind-literals"
    summary = (
        "event kinds at emit sites come from the repro.obs.events "
        "registry, never string literals (exempt: obs/)"
    )
    hint = (
        "import the kind from repro.obs.events (e.g. "
        "`from repro.obs import events as trace_events; "
        "tracer.emit(trace_events.DELIVER, ...)`)"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        # The registry package defines the literals and its sinks
        # forward whole event records; everywhere else must go through
        # the constants.
        return not ctx.in_directory("obs")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for call, name in iter_calls(tree):
            if name is None or "." not in name:
                continue
            if name.rsplit(".", 1)[-1] not in _EMIT_TAILS:
                continue
            if not call.args:
                continue
            first = call.args[0]
            if isinstance(first, ast.Constant) and isinstance(
                first.value, str
            ):
                yield self.finding(
                    ctx,
                    first,
                    f"event kind {first.value!r} passed as a string "
                    "literal; emit sites must use the schema constant "
                    "from repro.obs.events",
                )
