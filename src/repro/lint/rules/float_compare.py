"""RPL005 — float-equality and NaN-comparison hazards.

The allocation solvers and utility families compute the paper's welfare
numbers (Eq. 1, Theorems 1-2); exact ``==`` against float literals makes
those computations depend on rounding mode and optimization order, and
``x == nan`` is always false, so NaNs propagate into welfare silently.
Equality on *integer-valued* state (counts, budgets) is fine — this rule
only fires on float-literal and NaN comparisons.

Scope: ``allocation/`` and ``utility/``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import FileContext, Rule, register
from ._util import dotted_name

__all__ = ["FloatCompareRule"]

_NAN_NAMES = frozenset({"np.nan", "numpy.nan", "math.nan", "nan"})


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    # Negative literals parse as UnaryOp(USub, Constant).
    return (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, (ast.USub, ast.UAdd))
        and _is_float_literal(node.operand)
    )


def _is_nan(node: ast.AST) -> bool:
    name = dotted_name(node)
    if name in _NAN_NAMES:
        return True
    # float("nan")
    return (
        isinstance(node, ast.Call)
        and dotted_name(node.func) == "float"
        and len(node.args) == 1
        and isinstance(node.args[0], ast.Constant)
        and isinstance(node.args[0].value, str)
        and node.args[0].value.lower() in ("nan", "-nan")
    )


@register
class FloatCompareRule(Rule):
    code = "RPL005"
    name = "float-compare"
    summary = (
        "welfare math must not use exact float equality or compare "
        "against NaN"
    )
    hint = (
        "use math.isclose(a, b, abs_tol=...) / np.isclose with an "
        "explicit tolerance; test NaN with math.isnan/np.isnan"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_directory("allocation") or ctx.in_directory("utility")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_nan(left) or _is_nan(right):
                    yield self.finding(
                        ctx,
                        node,
                        "comparison against NaN is always False; NaNs "
                        "will flow into the welfare sums undetected",
                    )
                elif _is_float_literal(left) or _is_float_literal(right):
                    literal = next(
                        ast.unparse(side)
                        for side in (left, right)
                        if _is_float_literal(side)
                    )
                    yield self.finding(
                        ctx,
                        node,
                        f"exact float equality against {literal}; welfare "
                        "terms differ in the last ulp across "
                        "platforms/orders",
                    )
