"""RPL002 — no wall-clock time in simulation logic.

Simulated time is event time; reading the host clock inside the library
makes results depend on machine load and breaks replay (the reference-
equivalence tests compare event-by-event).  Timing is legitimate only in
the benchmark harness: the ``benchmarks/`` tree and the runner's timing
shim ``experiments/benchmark.py`` are exempt by path.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import FileContext, Rule, register
from ._util import iter_calls

__all__ = ["WallClockRule"]

#: Callee names that read the host clock.  ``time.sleep`` is absent on
#: purpose: the retry backoff waits, it never *reads* time.
_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "date.today",
    }
)


@register
class WallClockRule(Rule):
    code = "RPL002"
    name = "no-wall-clock"
    summary = (
        "simulation logic must be driven by event time, never the host "
        "clock (exempt: benchmarks/, experiments/benchmark.py)"
    )
    hint = (
        "use the simulation's event time; wall-clock timing belongs in "
        "benchmarks/ or the experiments/benchmark.py shim"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.in_directory("benchmarks") or ctx.parts[:1] == ("benchmarks",):
            return False
        return not ctx.matches("experiments", "benchmark.py")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for call, name in iter_calls(tree):
            if name in _CLOCK_CALLS:
                yield self.finding(
                    ctx,
                    call,
                    f"'{name}' reads the host clock; results become "
                    "machine- and load-dependent",
                )
