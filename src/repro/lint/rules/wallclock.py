"""RPL002 — no wall-clock time in simulation logic.

Simulated time is event time; reading the host clock inside the library
makes results depend on machine load and breaks replay (the reference-
equivalence tests compare event-by-event).  Timing is legitimate only in
the benchmark harness and the provenance shim: the ``benchmarks/`` tree,
the runner's timing shim ``experiments/benchmark.py``, and the telemetry
stopwatch ``obs/timing.py`` (whose measurements land in manifests, never
in simulation state) are exempt by path, as is the distributed
backend's clock seam ``dist/clock.py`` — the one sanctioned place the
host clock enters lease deadlines, and injectable precisely so tests
never touch it.  Everything else that wants a duration goes through
:class:`repro.obs.timing.Stopwatch`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import FileContext, Rule, register
from ._util import iter_calls

__all__ = ["WallClockRule"]

#: Callee names that read the host clock.  ``time.sleep`` is absent on
#: purpose: the retry backoff waits, it never *reads* time.
_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "date.today",
    }
)


@register
class WallClockRule(Rule):
    code = "RPL002"
    name = "no-wall-clock"
    summary = (
        "simulation logic must be driven by event time, never the host "
        "clock (exempt: benchmarks/, experiments/benchmark.py, "
        "obs/timing.py, dist/clock.py)"
    )
    hint = (
        "use the simulation's event time; wall-clock timing belongs in "
        "benchmarks/, the experiments/benchmark.py shim, the "
        "obs/timing.py provenance stopwatch, or the dist/clock.py "
        "lease-clock seam"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.in_directory("benchmarks") or ctx.parts[:1] == ("benchmarks",):
            return False
        if ctx.matches("experiments", "benchmark.py"):
            return False
        if ctx.matches("dist", "clock.py"):
            return False
        return not ctx.matches("obs", "timing.py")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for call, name in iter_calls(tree):
            if name in _CLOCK_CALLS:
                yield self.finding(
                    ctx,
                    call,
                    f"'{name}' reads the host clock; results become "
                    "machine- and load-dependent",
                )
