"""RPL006 — mutable defaults and shared class-level containers.

A mutable default argument (or a bare list/dict/set class attribute) is
one object shared by every call and every instance.  In this codebase
the failure mode is concrete: a shared dict on a protocol or scenario
config couples *trials that must be independent*, so the paired
comparison leaks state across protocols and the parallel sweep diverges
from the serial one only under specific orderings — the worst kind of
nondeterminism.

Exemptions: ``ClassVar``-annotated attributes (explicitly shared),
dunder names, dataclass ``field(default_factory=...)``, and immutable
containers (tuples, frozensets).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..findings import Finding
from ..registry import FileContext, Rule, register
from ._util import dotted_name

__all__ = ["MutableDefaultRule"]

_MUTABLE_CONSTRUCTORS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "defaultdict",
        "OrderedDict",
        "Counter",
        "deque",
        "collections.defaultdict",
        "collections.OrderedDict",
        "collections.Counter",
        "collections.deque",
        "np.array",
        "np.zeros",
        "np.ones",
        "np.empty",
        "numpy.array",
        "numpy.zeros",
        "numpy.ones",
        "numpy.empty",
    }
)

_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)


def _mutable_kind(node: Optional[ast.AST]) -> Optional[str]:
    """A short description when *node* evaluates to a shared mutable."""
    if node is None:
        return None
    if isinstance(node, _MUTABLE_LITERALS):
        return type(node).__name__.replace("Comp", " comprehension").lower()
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in _MUTABLE_CONSTRUCTORS:
            return f"{name}(...)"
    return None


def _is_classvar(annotation: Optional[ast.AST]) -> bool:
    if annotation is None:
        return False
    text = ast.unparse(annotation)
    return "ClassVar" in text or "Final" in text


@register
class MutableDefaultRule(Rule):
    code = "RPL006"
    name = "no-shared-mutables"
    summary = (
        "no mutable default arguments or bare mutable class attributes "
        "(shared state couples trials that must be independent)"
    )
    hint = (
        "default to None and build inside the function, or use "
        "dataclasses.field(default_factory=...); annotate intentional "
        "sharing with ClassVar"
    )

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_defaults(ctx, node)
            elif isinstance(node, ast.ClassDef):
                yield from self._check_class_body(ctx, node)

    def _check_defaults(
        self, ctx: FileContext, func: ast.AST
    ) -> Iterator[Finding]:
        args = func.args  # type: ignore[attr-defined]
        for default in [*args.defaults, *args.kw_defaults]:
            kind = _mutable_kind(default)
            if kind is not None:
                yield self.finding(
                    ctx,
                    default,
                    f"mutable default argument {kind} is shared by every "
                    f"call of '{func.name}'",  # type: ignore[attr-defined]
                )

    def _check_class_body(
        self, ctx: FileContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        for stmt in cls.body:
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
                value: Optional[ast.AST] = stmt.value
                annotation = None
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
                value = stmt.value
                annotation = stmt.annotation
            else:
                continue
            if _is_classvar(annotation):
                continue
            if any(
                isinstance(t, ast.Name) and t.id.startswith("__")
                for t in targets
            ):
                continue
            kind = _mutable_kind(value)
            if kind is not None:
                yield self.finding(
                    ctx,
                    stmt,
                    f"class attribute {kind} on '{cls.name}' is one "
                    "object shared by every instance",
                )
