"""RPL003 — protocol purity.

Replication protocols react to engine events; the engine owns replica
accounting (cache contents, replica counts, fault/online flags, the
outstanding-request book).  A protocol that writes that state directly
desynchronizes the engine's metrics — welfare numbers stay plausible but
stop matching Eq. 1 — so protocols may only create replicas through
``sim.insert_copy`` / ``sim.set_initial_allocation`` and may only mutate
their *own* per-node state (the QCR mandate book).

Scope: modules under ``protocols/``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..findings import Finding
from ..registry import FileContext, Rule, register
from ._util import dotted_name

__all__ = ["ProtocolPurityRule"]

#: NodeState attributes owned by the engine; protocols read, never write.
_ENGINE_OWNED_ATTRS = frozenset(
    {"cache", "online", "outstanding", "counter", "created_at", "is_server", "is_client"}
)

#: Mutating Cache methods a protocol must never call directly.
_CACHE_MUTATORS = frozenset(
    {"insert", "add", "discard", "pin", "unpin", "fill_random", "pop", "clear"}
)

#: Engine-owned NodeState methods that mutate the request book.
_NODE_MUTATORS = frozenset({"add_request"})


def _engine_owned_attr(node: ast.AST) -> Optional[str]:
    """The engine-owned attribute name when *node* targets one."""
    if isinstance(node, ast.Attribute) and node.attr in _ENGINE_OWNED_ATTRS:
        return node.attr
    return None


@register
class ProtocolPurityRule(Rule):
    code = "RPL003"
    name = "protocol-purity"
    summary = (
        "protocols mutate caches only via sim.insert_copy and never "
        "write engine-owned node state"
    )
    hint = (
        "create/remove replicas via sim.insert_copy/sim.remove_copy so "
        "the engine's replica accounting stays consistent; protocol "
        "state belongs in the mandates book or on the protocol object"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_directory("protocols")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    yield from self._check_store(ctx, node, target)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    yield from self._check_store(ctx, node, target)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    def _check_store(
        self, ctx: FileContext, stmt: ast.AST, target: ast.AST
    ) -> Iterator[Finding]:
        # x.cache = ... / del x.online / x.outstanding[i] = ...
        attr = _engine_owned_attr(target)
        if attr is not None and not self._is_self_store(target):
            yield self.finding(
                ctx,
                stmt,
                f"protocol writes engine-owned node attribute '.{attr}'",
            )
            return
        if isinstance(target, ast.Subscript):
            attr = _engine_owned_attr(target.value)
            if attr is not None:
                yield self.finding(
                    ctx,
                    stmt,
                    f"protocol mutates engine-owned '.{attr}' contents",
                )

    @staticmethod
    def _is_self_store(target: ast.AST) -> bool:
        """Allow ``self.cache = ...`` style protocol-object state."""
        return (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        )

    def _check_call(
        self, ctx: FileContext, call: ast.Call
    ) -> Iterator[Finding]:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        # <expr>.cache.<mutator>(...)
        if (
            func.attr in _CACHE_MUTATORS
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "cache"
        ):
            name = dotted_name(func) or f"<expr>.cache.{func.attr}"
            yield self.finding(
                ctx,
                call,
                f"direct cache mutation '{name}(...)' bypasses the "
                "engine's replica accounting",
            )
        elif func.attr in _NODE_MUTATORS:
            yield self.finding(
                ctx,
                call,
                f"'.{func.attr}(...)' mutates the engine-owned request "
                "book",
            )
        # <expr>.outstanding.<mutator>(...) — popping/clearing requests.
        elif (
            isinstance(func.value, ast.Attribute)
            and func.value.attr in ("outstanding",)
            and func.attr in ("pop", "clear", "setdefault", "update")
        ):
            yield self.finding(
                ctx,
                call,
                "protocol mutates the engine-owned outstanding-request "
                "book",
            )
