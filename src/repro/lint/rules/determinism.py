"""RPL001 — seeded determinism.

The reproduction's headline property is bit-identical seeded runs
(serial vs. parallel sweeps, optimized vs. reference engine).  Any use
of the stdlib ``random`` module or numpy's *global* RNG state breaks
that silently: global state is shared across protocols within a trial
and differs between the serial walk and forked workers.  All randomness
must flow through explicitly seeded :class:`numpy.random.Generator`
objects (``repro.types.as_rng`` / the ``sim/seeding.py`` path).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import FileContext, Rule, register
from ._util import iter_calls

__all__ = ["DeterminismRule"]

#: numpy.random module-level functions that touch the hidden global
#: ``RandomState`` (the legacy API).  ``default_rng``/``SeedSequence``/
#: ``Generator``/bit generators are the sanctioned, explicit-state API.
_LEGACY_GLOBAL = frozenset(
    {
        "seed",
        "random",
        "rand",
        "randn",
        "randint",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "exponential",
        "poisson",
        "binomial",
        "get_state",
        "set_state",
    }
)


@register
class DeterminismRule(Rule):
    code = "RPL001"
    name = "no-unseeded-rng"
    summary = (
        "randomness must come from explicitly seeded numpy Generators, "
        "never the stdlib random module or numpy's global RNG state"
    )
    hint = (
        "thread a seed or np.random.Generator through repro.types.as_rng "
        "(initial placement goes through sim/seeding.py)"
    )

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith(
                        "random."
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            "stdlib 'random' module is unseeded global "
                            "state; it breaks bit-identical replay",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        ctx,
                        node,
                        "import from stdlib 'random' relies on unseeded "
                        "global state",
                    )
        for call, name in iter_calls(tree):
            if name is None:
                continue
            head, _, tail = name.rpartition(".")
            if head in ("np.random", "numpy.random") and tail in _LEGACY_GLOBAL:
                yield self.finding(
                    ctx,
                    call,
                    f"'{name}' uses numpy's hidden global RandomState; "
                    "seeded runs are no longer reproducible",
                )
            elif tail == "default_rng" and not call.args and not call.keywords:
                yield self.finding(
                    ctx,
                    call,
                    "default_rng() without a seed draws OS entropy; every "
                    "RNG must be derived from the run's seed",
                )
