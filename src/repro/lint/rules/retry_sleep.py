"""RPL010 — no unsupervised sleep-based retry loops.

A ``while`` loop that waits with ``time.sleep`` has no a-priori bound:
when the condition never flips (a worker that died without releasing
its lease, a file that never appears) the process spins forever with
no one watching.  The repository has two sanctioned shapes for
waiting:

* bounded retries — a ``for attempt in range(attempts)`` loop with
  capped exponential backoff (the runner's attempt loop);
* supervised polling — the ``repro.dist`` package, where every wait
  happens under a lease TTL and a supervisor that reaps, requeues,
  and quarantines, and where sleeping goes through the injectable
  :class:`repro.dist.clock.Clock` so tests can fake time.

Everything else that finds itself writing ``while ...: time.sleep``
should either bound the loop or move the wait behind the distributed
backend's supervision.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import FileContext, Rule, register
from ._util import call_name

__all__ = ["RetrySleepRule"]

#: Callee names that block on the host clock inside a loop.
_SLEEP_CALLS = frozenset({"time.sleep", "sleep"})


def _sleeps_in(node: ast.AST) -> Iterator[ast.Call]:
    """Every sleep call lexically inside *node*, skipping nested defs.

    A function defined inside a ``while`` body runs on its own
    schedule — its sleeps are judged by the loop (if any) that the
    function itself contains, not by the enclosing loop.
    """
    for child in ast.iter_child_nodes(node):
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        if isinstance(child, ast.Call) and call_name(child) in _SLEEP_CALLS:
            yield child
        yield from _sleeps_in(child)


@register
class RetrySleepRule(Rule):
    code = "RPL010"
    name = "no-unsupervised-retry-sleep"
    summary = (
        "while-loops must not wait with time.sleep outside the "
        "supervised dist/ backend (exempt: benchmarks/)"
    )
    hint = (
        "bound the loop (for attempt in range(n) with capped backoff) "
        "or run the wait under repro.dist supervision via the "
        "injectable Clock"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.in_directory("dist") or ctx.parts[:1] == ("dist",):
            return False
        return not (
            ctx.in_directory("benchmarks")
            or ctx.parts[:1] == ("benchmarks",)
        )

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.While):
                continue
            for call in _sleeps_in(node):
                yield self.finding(
                    ctx,
                    call,
                    "sleep inside a while-loop is an unbounded retry: "
                    "nothing reaps the wait if the condition never "
                    "flips",
                )
