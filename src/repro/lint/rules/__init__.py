"""Rule plugins.

Importing this package registers every built-in rule; add a module here
and import it below to ship a new rule (see docs/static_analysis.md).
"""

from . import (  # noqa: F401  (imported for their @register side effect)
    broad_except,
    determinism,
    event_literals,
    event_order,
    float_compare,
    fork_safety,
    mutable_defaults,
    no_print,
    protocol_purity,
    retry_sleep,
    wallclock,
)

__all__ = [
    "broad_except",
    "determinism",
    "event_literals",
    "event_order",
    "float_compare",
    "fork_safety",
    "mutable_defaults",
    "no_print",
    "protocol_purity",
    "retry_sleep",
    "wallclock",
]
