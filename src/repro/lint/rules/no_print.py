"""RPL009 — no bare ``print()`` in experiment orchestration code.

Sweeps run for minutes to hours, fan out over worker processes, and are
resumed from checkpoints; their status output must be filterable by
level, carry structured fields, and interleave sanely across processes.
A bare ``print()`` gives none of that — it writes to stdout (where
figure/table renderings go), cannot be silenced in tests, and loses the
(trial, protocol) context that makes a line greppable.  Experiment code
reports through :func:`repro.obs.log.get_logger` instead.

Scope is ``src/repro/experiments/`` only: the CLI layer prints its
``render()`` output on purpose, and library code elsewhere simply has
nothing to say.  Deliberate exceptions (there are few) use an inline
``# repro-lint: ignore[RPL009]`` suppression.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import FileContext, Rule, register

__all__ = ["NoPrintRule"]


@register
class NoPrintRule(Rule):
    code = "RPL009"
    name = "no-print-in-experiments"
    summary = (
        "experiment orchestration reports through repro.obs.log, "
        "never bare print() (scope: experiments/)"
    )
    hint = (
        "use get_logger(__name__).info(message, **fields) from "
        "repro.obs.log; printing belongs in the CLI layer"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_directory("experiments")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(
                    ctx,
                    node,
                    "bare print() in experiment code: unleveled, "
                    "unstructured, and mixed into stdout renderings",
                )
