"""RPL007 — broad exception handlers that swallow diagnostics.

``except:`` / ``except Exception`` around a loader or checkpoint path
can swallow :class:`~repro.errors.TraceFormatError` (a corrupt trace
silently becomes an empty one) or checkpoint-corruption errors (a sweep
quietly restarts from scratch).  Broad handlers are allowed only when
the handler visibly re-raises — the crash-tolerant runner's
``on_error="raise"`` passthrough is the sanctioned pattern.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import FileContext, Rule, register
from ._util import is_name_constant

__all__ = ["BroadExceptRule"]


def _is_broad(handler_type: ast.AST) -> bool:
    if is_name_constant(handler_type, "Exception", "BaseException"):
        return True
    if isinstance(handler_type, ast.Tuple):
        return any(_is_broad(element) for element in handler_type.elts)
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    """True when the handler body contains a re-raise on some path."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
    return False


@register
class BroadExceptRule(Rule):
    code = "RPL007"
    name = "no-swallowed-errors"
    summary = (
        "bare/broad except may swallow TraceFormatError or checkpoint "
        "corruption; catch specific errors or re-raise"
    )
    hint = (
        "catch the specific exception (TraceFormatError, "
        "ConfigurationError, OSError, ...) or re-raise on at least one "
        "path"
    )

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                if not _reraises(node):
                    yield self.finding(
                        ctx,
                        node,
                        "bare 'except:' swallows every error including "
                        "KeyboardInterrupt",
                    )
            elif _is_broad(node.type) and not _reraises(node):
                caught = ast.unparse(node.type)
                yield self.finding(
                    ctx,
                    node,
                    f"'except {caught}' without a re-raise can swallow "
                    "TraceFormatError / checkpoint corruption",
                )
