"""RPL004 — stable event-stream ordering in the engine.

The engine merges three individually time-sorted streams — faults,
requests, contacts — with one stable ``np.lexsort`` keyed on
``(kinds, times)``: primary key time, tie-break by kind code so that
same-instant events apply fault → request → contact, and original order
within each stream is preserved.  The parallel-determinism and
reference-equivalence guarantees assume exactly this order; an ad-hoc
re-sort (default ``np.sort``/``np.argsort`` are unstable introsorts) or
a lexsort with a different key silently reorders same-time events.

Scope: modules under ``sim/``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import FileContext, Rule, register
from ._util import iter_calls

__all__ = ["EventOrderRule"]

_STABLE_KINDS = ("stable", "mergesort")


def _kind_keyword(call: ast.Call) -> object:
    for keyword in call.keywords:
        if keyword.arg == "kind" and isinstance(keyword.value, ast.Constant):
            return keyword.value.value
    return None


@register
class EventOrderRule(Rule):
    code = "RPL004"
    name = "stable-event-order"
    summary = (
        "event-stream merges in sim/ must keep the stable "
        "(kinds, times) lexsort key (fault -> request -> contact)"
    )
    hint = (
        "merge events with np.lexsort((kinds, times)) — time-primary, "
        "kind tie-break — or pass kind='stable' to argsort/sort; see "
        "Simulation._build_event_stream"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_directory("sim")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for call, name in iter_calls(tree):
            if name is None:
                continue
            tail = name.rsplit(".", 1)[-1]
            if tail == "lexsort":
                yield from self._check_lexsort(ctx, call)
            elif tail == "argsort" and _kind_keyword(call) not in _STABLE_KINDS:
                yield self.finding(
                    ctx,
                    call,
                    "argsort without kind='stable' can reorder same-time "
                    "events and break replay",
                )
            elif name in ("np.sort", "numpy.sort") and (
                _kind_keyword(call) not in _STABLE_KINDS
            ):
                yield self.finding(
                    ctx,
                    call,
                    "np.sort without kind='stable' is an unstable "
                    "introsort; same-time events may swap",
                )

    def _check_lexsort(
        self, ctx: FileContext, call: ast.Call
    ) -> Iterator[Finding]:
        keys = call.args[0] if call.args else None
        if not isinstance(keys, (ast.Tuple, ast.List)) or len(keys.elts) < 2:
            yield self.finding(
                ctx,
                call,
                "lexsort needs an explicit (kinds, times) key tuple so "
                "the merge order is auditable",
            )
            return
        rendered = [ast.unparse(element) for element in keys.elts]
        # lexsort's *last* key is primary: it must be the event times.
        primary_is_time = "time" in rendered[-1]
        has_kind_tiebreak = any(
            "kind" in text or "priority" in text for text in rendered[:-1]
        )
        if not (primary_is_time and has_kind_tiebreak):
            yield self.finding(
                ctx,
                call,
                f"lexsort key ({', '.join(rendered)}) drops the stable "
                "fault -> request -> contact order: the last (primary) "
                "key must be the times, with a kind tie-break before it",
            )
