"""Shared AST helpers for rule implementations."""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

__all__ = [
    "dotted_name",
    "call_name",
    "iter_calls",
    "is_name_constant",
]


def dotted_name(node: ast.AST) -> Optional[str]:
    """Resolve a ``Name``/``Attribute`` chain to ``a.b.c``, else ``None``."""
    parts = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def call_name(call: ast.Call) -> Optional[str]:
    """The dotted name of a call's callee, when statically resolvable."""
    return dotted_name(call.func)


def iter_calls(tree: ast.AST) -> Iterator[Tuple[ast.Call, Optional[str]]]:
    """Every call in *tree* paired with its dotted callee name."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node, call_name(node)


def is_name_constant(node: ast.AST, *names: str) -> bool:
    """True when *node* is a bare name or attribute tail in *names*.

    Matches both ``Exception`` and e.g. ``builtins.Exception``.
    """
    dotted = dotted_name(node)
    if dotted is None:
        return False
    return dotted in names or dotted.rsplit(".", 1)[-1] in names
