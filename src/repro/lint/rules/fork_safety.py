"""RPL008 — fork-safety of parallel work units.

The parallel sweep runner fans ``(trial, protocol)`` units over a
``fork`` process pool and promises bit-identical results.  That promise
has three structural preconditions:

* the pool's start method is pinned explicitly (``mp_context=``) — the
  platform default flipped to ``spawn`` on macOS and is changing on
  Linux, and the fork-inherited ``_WORKER_CONTEXT`` pattern silently
  breaks under ``spawn``;
* submitted callables are module-level functions, not lambdas/closures
  (unpicklable under spawn, and closure captures are exactly the state
  that diverges between parent and child);
* RNG *objects* never cross the process boundary — a Generator captured
  at submit time has parent-side state; workers must derive their own
  from integer seeds.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import FileContext, Rule, register
from ._util import dotted_name

__all__ = ["ForkSafetyRule"]

_POOL_CONSTRUCTORS = frozenset(
    {
        "ProcessPoolExecutor",
        "concurrent.futures.ProcessPoolExecutor",
        "futures.ProcessPoolExecutor",
    }
)

#: Receiver-name fragments that mark a submit/map target as a pool.
_POOL_RECEIVERS = ("pool", "executor")


def _has_keyword(call: ast.Call, name: str) -> bool:
    return any(keyword.arg == name for keyword in call.keywords)


def _is_rng_like(node: ast.AST) -> bool:
    """Heuristic: an RNG object crossing into a work unit."""
    if isinstance(node, ast.Name) and node.id in ("rng", "generator"):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func) or ""
        return name.rsplit(".", 1)[-1] == "default_rng"
    return False


@register
class ForkSafetyRule(Rule):
    code = "RPL008"
    name = "fork-safe-work-units"
    summary = (
        "parallel work units must be picklable, seed-driven, and run on "
        "a pool with an explicitly pinned start method"
    )
    hint = (
        "pin mp_context=multiprocessing.get_context('fork'), submit "
        "module-level functions, and pass integer seeds (derive "
        "Generators inside the worker)"
    )

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in _POOL_CONSTRUCTORS and not _has_keyword(
                node, "mp_context"
            ):
                yield self.finding(
                    ctx,
                    node,
                    "ProcessPoolExecutor without mp_context=: the "
                    "platform-default start method is not fork "
                    "everywhere, and fork-inherited worker context "
                    "breaks under spawn",
                )
            elif isinstance(node.func, ast.Attribute) and node.func.attr in (
                "submit",
                "map",
            ):
                receiver = dotted_name(node.func.value) or ""
                if not any(
                    fragment in receiver.lower()
                    for fragment in _POOL_RECEIVERS
                ):
                    continue
                for arg in node.args:
                    if isinstance(arg, ast.Lambda):
                        yield self.finding(
                            ctx,
                            arg,
                            "lambda submitted to a process pool: "
                            "unpicklable under spawn and captures "
                            "parent-side state",
                        )
                    elif _is_rng_like(arg):
                        yield self.finding(
                            ctx,
                            arg,
                            "RNG object crosses the fork boundary; its "
                            "state is the parent's at fork time — pass "
                            "an integer seed instead",
                        )
