"""The ``repro lint`` subcommand."""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from .registry import all_rules
from .runner import run_lint

__all__ = ["add_lint_arguments", "cmd_lint"]

DEFAULT_PATHS = ("src/repro",)


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json is the CI-artifact form)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )


def _render_catalog() -> str:
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.code} {rule.name}")
        lines.append(f"    {rule.summary}")
    return "\n".join(lines)


def cmd_lint(args: argparse.Namespace) -> int:
    """Entry point wired into :func:`repro.cli.main`.

    Exit codes: 0 clean, 1 findings or parse errors.
    """
    if args.list_rules:
        print(_render_catalog())
        return 0
    select: Optional[Sequence[str]] = None
    if args.select:
        select = [code.strip() for code in args.select.split(",") if code.strip()]
    report = run_lint(args.paths, select=select)
    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render_text())
    return 0 if report.ok else 1
