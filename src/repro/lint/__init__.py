"""repro-lint: repo-specific static analysis for the reproduction.

The reproduction's correctness claims — bit-identical seeded runs and
paper-faithful welfare numbers — depend on conventions no general
linter checks: all randomness seeded and threaded explicitly, no wall
clock in simulation logic, protocols mutating caches only through the
engine API, the stable fault -> request -> contact event merge, tolerant
float comparisons in the welfare math, no shared mutable state, no
swallowed loader errors, and fork-safe parallel work units.  This
package turns those conventions into machine-checked rules (``RPL001``…)
with a plugin registry, inline suppressions, and text/JSON reporting.

Run it as ``repro lint [paths]``; see docs/static_analysis.md for the
rule catalog.
"""

from __future__ import annotations

from .findings import Finding
from .registry import FileContext, Rule, all_rules, register
from .runner import LintReport, lint_source, run_lint

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "LintReport",
    "all_rules",
    "register",
    "run_lint",
    "lint_source",
]
