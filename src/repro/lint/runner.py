"""Lint driver: walk paths, parse, run rules, apply suppressions.

The public entry points are :func:`run_lint` (programmatic) and
:func:`repro.lint.cli.main` (the ``repro lint`` subcommand).  Output is
deterministic: files are visited in sorted order and findings sorted by
location, so CI diffs are stable.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .findings import Finding
from .registry import FileContext, Rule, all_rules, rules_by_code
from .suppressions import parse_suppressions

__all__ = ["LintReport", "run_lint", "lint_source"]

#: Schema version of the ``--format json`` payload.
JSON_VERSION = 1


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    n_files: int = 0
    n_suppressed: int = 0
    #: Files that failed to parse: (path, error message).
    parse_errors: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors

    def render_text(self) -> str:
        lines = [finding.render() for finding in self.findings]
        lines.extend(
            f"{path}: parse error: {message}"
            for path, message in self.parse_errors
        )
        summary = (
            f"{len(self.findings)} finding(s) in {self.n_files} file(s)"
            f", {self.n_suppressed} suppressed"
        )
        if self.parse_errors:
            summary += f", {len(self.parse_errors)} parse error(s)"
        lines.append(summary)
        return "\n".join(lines)

    def render_json(self) -> str:
        payload = {
            "version": JSON_VERSION,
            "tool": "repro-lint",
            "n_files": self.n_files,
            "n_findings": len(self.findings),
            "n_suppressed": self.n_suppressed,
            "parse_errors": [
                {"file": path, "message": message}
                for path, message in self.parse_errors
            ],
            "findings": [finding.to_dict() for finding in self.findings],
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def _iter_python_files(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        elif not path.exists():
            raise ConfigurationError(f"no such file or directory: {path}")
    # Deduplicate while preserving sorted order per input path.
    seen = set()
    unique: List[Path] = []
    for path in files:
        resolved = path.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        unique.append(path)
    return unique


def lint_source(
    source: str,
    path: Path,
    rules: Optional[Sequence[Rule]] = None,
) -> Tuple[List[Finding], int, Optional[str]]:
    """Lint one in-memory source file.

    Returns ``(findings, n_suppressed, parse_error)``; *parse_error* is
    an error message when the file is not valid Python.
    """
    ctx = FileContext(path, source)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return [], 0, f"line {error.lineno}: {error.msg}"
    suppressions = parse_suppressions(source)
    if suppressions.skip_file:
        return [], 0, None
    active = list(rules) if rules is not None else all_rules()
    findings: List[Finding] = []
    n_suppressed = 0
    for rule in active:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(tree, ctx):
            if suppressions.is_suppressed(finding.line, finding.code):
                n_suppressed += 1
            else:
                findings.append(finding)
    findings.sort()
    return findings, n_suppressed, None


def run_lint(
    paths: Sequence[str],
    *,
    select: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint every ``.py`` file under *paths* with the registered rules.

    *select* restricts the run to the listed rule codes.
    """
    rules = rules_by_code(list(select)) if select else all_rules()
    report = LintReport()
    for path in _iter_python_files([Path(p) for p in paths]):
        source = path.read_text(encoding="utf-8")
        findings, n_suppressed, parse_error = lint_source(
            source, path, rules
        )
        report.n_files += 1
        report.n_suppressed += n_suppressed
        if parse_error is not None:
            report.parse_errors.append((str(path), parse_error))
        report.findings.extend(findings)
    report.findings.sort()
    return report
