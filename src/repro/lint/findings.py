"""Finding record produced by lint rules.

A finding pins one violation to a source location and carries the rule
code (``RPL001``…), a human-readable message, and a fix hint.  Findings
sort by (file, line, column, code) so reports are stable across runs —
the linter itself must be deterministic, for obvious reasons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    hint: str = ""

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def render(self) -> str:
        """The one-line text form: ``path:line:col: CODE message``."""
        text = f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form used by ``--format json``."""
        return {
            "file": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "hint": self.hint,
        }
