"""Inline suppression comments.

A finding on line *n* is suppressed by a trailing (same-line) comment::

    risky_call()  # repro-lint: ignore[RPL002] timing shim, not sim logic

or by a standalone directive comment, which applies to the next code
line (justifications go on the comment lines above it)::

    # Timing shim used only by the benchmark harness.
    # repro-lint: ignore[RPL002]
    risky_call()

``ignore[CODE1,CODE2]`` suppresses only the listed codes; a bare
``# repro-lint: ignore`` suppresses every rule on that line.  A
``# repro-lint: skip-file`` comment anywhere in the first ten lines
excludes the whole file (used for vendored or generated code).

Comments are located with :mod:`tokenize`, so ``# repro-lint:`` inside a
string literal is never mistaken for a directive.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

__all__ = ["SuppressionMap", "parse_suppressions"]

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>ignore|skip-file)"
    r"(?:\[(?P<codes>[A-Z0-9,\s]+)\])?"
)

#: Sentinel code set meaning "every rule".
_ALL: FrozenSet[str] = frozenset({"*"})

_SKIP_FILE_SCAN_LINES = 10


@dataclass
class SuppressionMap:
    """Per-line suppressed rule codes for one source file."""

    skip_file: bool = False
    #: line number -> suppressed codes ({"*"} means all).
    by_line: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    def is_suppressed(self, line: int, code: str) -> bool:
        if self.skip_file:
            return True
        codes = self.by_line.get(line)
        if codes is None:
            return False
        return codes is _ALL or "*" in codes or code in codes

    @property
    def n_directives(self) -> int:
        return len(self.by_line) + (1 if self.skip_file else 0)


def _parse_directive(comment: str) -> Optional[FrozenSet[str]]:
    """Return the code set for an ``ignore`` directive, or ``None``.

    ``skip-file`` directives are handled separately and return ``None``
    here.
    """
    match = _DIRECTIVE.search(comment)
    if match is None or match.group("kind") != "ignore":
        return None
    codes = match.group("codes")
    if not codes:
        return _ALL
    return frozenset(
        code.strip() for code in codes.split(",") if code.strip()
    )


def parse_suppressions(source: str) -> SuppressionMap:
    """Extract every suppression directive from *source*."""
    suppressions = SuppressionMap()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The AST parse will report the real error; nothing to suppress.
        return suppressions
    #: Lines holding actual code (any non-comment, non-trivia token).
    code_lines = set()
    for token in tokens:
        if token.type in (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
        ):
            continue
        for line in range(token.start[0], token.end[0] + 1):
            code_lines.add(line)
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        line = token.start[0]
        match = _DIRECTIVE.search(token.string)
        if match is None:
            continue
        if match.group("kind") == "skip-file":
            if line <= _SKIP_FILE_SCAN_LINES:
                suppressions.skip_file = True
            continue
        codes = _parse_directive(token.string)
        if codes is None:
            continue
        if line not in code_lines:
            # Standalone directive: applies to the next code line.
            following = [n for n in code_lines if n > line]
            if not following:
                continue
            line = min(following)
        previous = suppressions.by_line.get(line)
        if previous is not None and codes is not _ALL and previous is not _ALL:
            codes = previous | codes
        suppressions.by_line[line] = codes
    return suppressions
