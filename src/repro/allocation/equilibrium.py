"""Property-1 balance-condition diagnostics.

At the relaxed optimum, ``d_i * phi(x_i)`` is the same for every item in
the interior of the feasible box.  These helpers measure how far an
allocation — analytic or observed in simulation — is from that balance,
which is also the steady-state condition of QCR (Property 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..demand import DemandModel
from ..errors import AllocationError
from ..types import FloatArray
from ..utility import DelayUtility

__all__ = ["BalanceReport", "balance_values", "balance_report"]


def balance_values(
    counts: FloatArray,
    demand: DemandModel,
    utility: DelayUtility,
    mu: float,
) -> FloatArray:
    """Return the per-item balance values ``d_i * phi(x_i)``.

    Items with ``x_i = 0`` map to ``inf`` when ``phi(0)`` diverges.
    """
    counts = np.asarray(counts, dtype=float)
    if counts.shape != (demand.n_items,):
        raise AllocationError(
            f"counts shape {counts.shape} != ({demand.n_items},)"
        )
    return np.array(
        [
            # 0 * inf (zero-demand item with no replicas) is 0 here: the
            # item contributes nothing to welfare at any allocation.
            0.0 if d == 0 else d * utility.phi(float(x), mu)
            for d, x in zip(demand.rates, counts)
        ]
    )


@dataclass(frozen=True)
class BalanceReport:
    """How closely an allocation satisfies the Property-1 condition."""

    #: Balance values of items strictly inside ``(0, n_servers)``.
    interior_values: FloatArray
    #: Relative spread ``(max - min) / mean`` over interior items.
    relative_spread: float
    #: Item ids pinned at the upper bound ``x_i = n_servers``.
    at_upper: np.ndarray
    #: Item ids at ``x_i = 0``.
    at_zero: np.ndarray

    def is_balanced(self, rtol: float = 1e-6) -> bool:
        """True when interior balance values agree within *rtol*.

        Boundary items are exempt, mirroring Property 1 (their balance
        values may exceed / fall below the common multiplier).
        """
        return self.relative_spread <= rtol


def balance_report(
    counts: FloatArray,
    demand: DemandModel,
    utility: DelayUtility,
    mu: float,
    n_servers: int,
    *,
    boundary_tol: float = 1e-9,
) -> BalanceReport:
    """Build a :class:`BalanceReport` for *counts*."""
    counts = np.asarray(counts, dtype=float)
    values = balance_values(counts, demand, utility, mu)
    at_upper = np.where(counts >= n_servers - boundary_tol)[0]
    at_zero = np.where(counts <= boundary_tol)[0]
    interior = (counts > boundary_tol) & (counts < n_servers - boundary_tol)
    interior_values = values[interior]
    if len(interior_values) == 0:
        spread = 0.0
    else:
        mean = float(np.mean(interior_values))
        spread = (
            float(np.ptp(interior_values) / abs(mean)) if mean != 0 else 0.0
        )
    return BalanceReport(
        interior_values=interior_values,
        relative_spread=spread,
        at_upper=at_upper,
        at_zero=at_zero,
    )
