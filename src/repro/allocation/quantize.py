"""From fractional counts to concrete caches.

Two steps separate an analytic allocation from simulator state:

1. :func:`quantize_counts` — round fractional per-item counts to integers
   that sum to the budget (largest-remainder method with per-item caps);
2. :func:`place_copies` — assign each item's copies to distinct servers
   without exceeding any server's ``rho`` slots (longest-processing-time
   greedy onto least-loaded servers, which is exact for this feasibility
   problem).
"""

from __future__ import annotations

import numpy as np

from ..errors import AllocationError
from ..types import FloatArray, IntArray, SeedLike, as_rng

__all__ = ["quantize_counts", "place_copies", "counts_of_allocation"]


def quantize_counts(
    fractional: FloatArray, budget: int, max_count: int
) -> IntArray:
    """Round fractional counts to integers summing to *budget*.

    Uses the largest-remainder method: floor everything, then hand the
    remaining copies to the items with the largest fractional parts (ties
    broken toward more popular = larger fractional count).  Respects the
    per-item ``max_count`` cap.
    """
    fractional = np.asarray(fractional, dtype=float)
    if np.any(fractional < 0) or not np.all(np.isfinite(fractional)):
        raise AllocationError("fractional counts must be finite and >= 0")
    if budget < 0:
        raise AllocationError(f"budget must be >= 0, got {budget}")
    if budget > len(fractional) * max_count:
        raise AllocationError(
            f"budget {budget} exceeds capacity {len(fractional) * max_count}"
        )
    counts = np.minimum(np.floor(fractional), max_count).astype(np.int64)
    deficit = budget - int(counts.sum())
    if deficit < 0:
        # Fractional input oversubscribed the budget; trim the smallest
        # remainders first.
        order = np.argsort(fractional - np.floor(fractional), kind="stable")
        for item in order:
            if deficit == 0:
                break
            if counts[item] > 0:
                counts[item] -= 1
                deficit += 1
        return counts
    remainders = fractional - np.floor(fractional)
    # Prefer large remainders; among ties prefer larger fractional counts.
    order = np.lexsort((-fractional, -remainders))
    cursor = 0
    while deficit > 0:
        progressed = False
        for item in order[cursor:]:
            if counts[item] < max_count:
                counts[item] += 1
                deficit -= 1
                progressed = True
                if deficit == 0:
                    break
        cursor = 0
        if not progressed:
            raise AllocationError("unable to place all copies under caps")
    return counts


def place_copies(
    counts: IntArray,
    n_servers: int,
    rho: int,
    seed: SeedLike = None,
) -> IntArray:
    """Place integer per-item counts onto servers.

    Returns a binary ``(n_items, n_servers)`` matrix where each item ``i``
    occupies ``counts[i]`` distinct servers and every server holds at most
    ``rho`` items.  Items are placed in decreasing count order onto the
    currently least-loaded servers (random tie-breaking), which always
    succeeds when ``counts[i] <= n_servers`` and ``sum(counts) <= rho *
    n_servers``.
    """
    counts = np.asarray(counts, dtype=np.int64)
    if np.any(counts < 0):
        raise AllocationError("counts must be >= 0")
    if np.any(counts > n_servers):
        raise AllocationError("an item cannot exceed one copy per server")
    if counts.sum() > rho * n_servers:
        raise AllocationError(
            f"total copies {counts.sum()} exceed capacity {rho * n_servers}"
        )
    rng = as_rng(seed)
    allocation = np.zeros((len(counts), n_servers), dtype=np.int8)
    # Each item takes the `need` non-full servers minimizing
    # (load, random tiebreak).  The tiebreak permutation makes the key
    # unique per server, so that minimal set is unique and can be
    # selected with one argpartition per item — exactly the servers a
    # (load, tiebreak, server) pop-push heap would yield, without the
    # per-copy Python heap traffic that dominated million-server setup.
    tiebreak = rng.permutation(n_servers)
    loads = np.zeros(n_servers, dtype=np.int64)
    key = tiebreak.astype(np.int64)  # == load * n_servers + tiebreak
    for item in np.argsort(-counts, kind="stable"):
        need = int(counts[item])
        if need == 0:
            break
        available = np.flatnonzero(loads < rho)
        if len(available) < need:
            raise AllocationError(
                "placement failed: all servers full"
            )  # pragma: no cover - guarded by capacity checks
        if len(available) == need:
            chosen = available
        else:
            chosen = available[
                np.argpartition(key[available], need - 1)[:need]
            ]
        allocation[item, chosen] = 1
        loads[chosen] += 1
        key[chosen] += n_servers
    return allocation


def counts_of_allocation(allocation: IntArray) -> IntArray:
    """Per-item replica counts of a binary allocation matrix."""
    allocation = np.asarray(allocation)
    return allocation.sum(axis=1).astype(np.int64)
