"""Integer-optimal homogeneous allocation — the greedy of Theorem 2.

Under homogeneous contacts the welfare is a separable concave function of
replica counts, so the classic marginal-allocation greedy is exact: keep a
heap of next-copy marginal gains and repeatedly give a copy to the item
with the largest one, in ``O(|I| + rho*|S| log |I|)`` as the paper states.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..demand import DemandModel
from ..errors import ConfigurationError
from ..types import IntArray
from ..utility import DelayUtility
from .welfare import item_gain_function

__all__ = ["GreedyResult", "greedy_homogeneous"]


@dataclass(frozen=True)
class GreedyResult:
    """Outcome of the homogeneous greedy allocation."""

    #: Integer replica counts per item, summing to at most the budget.
    counts: IntArray
    #: Welfare of the returned counts (same convention as
    #: :func:`~repro.allocation.welfare.homogeneous_welfare`).
    welfare: float

    @property
    def total_copies(self) -> int:
        return int(self.counts.sum())


def greedy_homogeneous(
    demand: DemandModel,
    utility: DelayUtility,
    mu: float,
    n_servers: int,
    rho: int,
    *,
    pure_p2p: bool = False,
    n_clients: Optional[int] = None,
    budget: Optional[int] = None,
) -> GreedyResult:
    """Maximize homogeneous welfare over integer replica counts.

    Every item's count is capped at ``n_servers`` (at most one copy per
    server); the total is capped at ``budget`` (default ``rho * n_servers``,
    the global cache size).  Concavity of the per-item gain (Theorem 2)
    makes the marginal-allocation greedy exact.

    Copies with zero marginal gain are still placed (cache slots are free),
    which matches the simulator where caches are always full; the welfare
    value is unaffected.
    """
    if n_servers <= 0 or rho <= 0:
        raise ConfigurationError("n_servers and rho must be > 0")
    if budget is None:
        budget = rho * n_servers
    if budget < 0:
        raise ConfigurationError(f"budget must be >= 0, got {budget}")
    budget = min(budget, demand.n_items * n_servers)

    gain = item_gain_function(
        utility, mu, pure_p2p=pure_p2p, n_clients=n_clients
    )
    rates = demand.rates
    n_items = demand.n_items
    counts = np.zeros(n_items, dtype=np.int64)
    # Cache G(x) per item: gains_now[i] = G(counts[i]).
    gain_zero = float(gain(0))
    gains_now = np.full(n_items, gain_zero)

    def marginal(item: int) -> float:
        nxt = float(gain(int(counts[item]) + 1))
        current = gains_now[item]
        if math.isinf(current) and current < 0:
            return math.inf  # first copy of an unbounded-cost item
        return rates[item] * (nxt - current)

    heap = [(-marginal(i), i) for i in range(n_items)]
    heapq.heapify(heap)
    placed = 0
    while placed < budget and heap:
        neg_gain, item = heapq.heappop(heap)
        counts[item] += 1
        gains_now[item] = float(gain(int(counts[item])))
        placed += 1
        if counts[item] < n_servers:
            heapq.heappush(heap, (-marginal(item), item))

    welfare = float(np.sum(rates * gain(counts)))
    return GreedyResult(counts=counts, welfare=welfare)
