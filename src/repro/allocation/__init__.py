"""Cache-allocation optimization: welfare, optimal solvers, diagnostics."""

from .closed_form import (
    dominant_counts,
    power_allocation_exponent,
    power_law_counts,
    proportional_counts,
    sqrt_counts,
    uniform_counts,
    weighted_counts,
)
from .dynamics import DynamicsResult, dynamics_equilibrium, replica_dynamics
from .equilibrium import BalanceReport, balance_report, balance_values
from .greedy import GreedyResult, greedy_homogeneous
from .quantize import counts_of_allocation, place_copies, quantize_counts
from .relaxed import RelaxedResult, solve_relaxed
from .submodular import (
    HeterogeneousProblem,
    HeterogeneousResult,
    greedy_heterogeneous,
)
from .welfare import (
    heterogeneous_welfare,
    homogeneous_welfare,
    homogeneous_welfare_discrete,
    item_gain_function,
)

__all__ = [
    "homogeneous_welfare",
    "homogeneous_welfare_discrete",
    "heterogeneous_welfare",
    "item_gain_function",
    "GreedyResult",
    "greedy_homogeneous",
    "RelaxedResult",
    "solve_relaxed",
    "HeterogeneousProblem",
    "HeterogeneousResult",
    "greedy_heterogeneous",
    "power_allocation_exponent",
    "weighted_counts",
    "power_law_counts",
    "uniform_counts",
    "proportional_counts",
    "sqrt_counts",
    "dominant_counts",
    "quantize_counts",
    "place_copies",
    "counts_of_allocation",
    "BalanceReport",
    "balance_values",
    "balance_report",
    "DynamicsResult",
    "replica_dynamics",
    "dynamics_equilibrium",
]
