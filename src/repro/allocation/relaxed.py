"""Relaxed (fractional) optimal allocation — Property 1 of the paper.

When replica counts may take real values, the welfare is concave and the
optimum satisfies the *balance condition*: ``d_i * phi(x_i)`` equals a
common multiplier ``lambda`` for every item in the interior of the domain
(items pinned at ``x_i = n_servers`` may have a larger value, items at the
lower bound a smaller one).

The solver inverts the condition: ``x_i(lambda) = phi^{-1}(lambda / d_i)``
clipped to ``[0, n_servers]``, and bisects on ``lambda`` until the counts
meet the cache budget.  Since ``phi`` is strictly decreasing, ``x_i`` is
monotone in ``lambda`` and the bisection is globally convergent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..demand import DemandModel
from ..errors import ConfigurationError
from ..types import FloatArray
from ..utility import DelayUtility

__all__ = ["RelaxedResult", "solve_relaxed"]


@dataclass(frozen=True)
class RelaxedResult:
    """Solution of the relaxed welfare maximization."""

    #: Fractional replica counts per item, summing to the budget.
    counts: FloatArray
    #: The common balance value ``lambda = d_i * phi(x_i)`` on the interior.
    multiplier: float


def solve_relaxed(
    demand: DemandModel,
    utility: DelayUtility,
    mu: float,
    n_servers: int,
    budget: float,
    *,
    tol: float = 1e-9,
    max_iter: int = 200,
) -> RelaxedResult:
    """Solve the relaxed cache-allocation problem of Theorem 2.

    Parameters
    ----------
    budget:
        Total (fractional) number of replicas to distribute, typically
        ``rho * n_servers``.  Must not exceed ``n_items * n_servers``.
    """
    if mu <= 0:
        raise ConfigurationError(f"mu must be > 0, got {mu}")
    if n_servers <= 0:
        raise ConfigurationError(f"n_servers must be > 0, got {n_servers}")
    if not 0 < budget <= demand.n_items * n_servers:
        raise ConfigurationError(
            f"budget must be in (0, n_items*n_servers], got {budget}"
        )
    rates = demand.rates

    def counts_for(multiplier: float) -> FloatArray:
        counts = np.empty(demand.n_items)
        for i, d in enumerate(rates):
            if d == 0:
                counts[i] = 0.0
                continue
            x = utility.phi_inverse(multiplier / d, mu)
            counts[i] = min(max(x, 0.0), float(n_servers))
        return counts

    # Bracket the multiplier: total(lambda) is non-increasing.
    lam_lo = None  # total >= budget
    lam_hi = None  # total <= budget
    lam = 1.0
    for _ in range(200):
        total = counts_for(lam).sum()
        if total >= budget:
            lam_lo = lam
            lam *= 4.0
        else:
            lam_hi = lam
            lam /= 4.0
        if lam_lo is not None and lam_hi is not None:
            break
    if lam_lo is None or lam_hi is None:
        raise ConfigurationError(
            "could not bracket the balance multiplier; "
            "check demand rates and budget"
        )
    lo, hi = min(lam_lo, lam_hi), max(lam_lo, lam_hi)
    # counts_for is non-increasing in lambda: large lambda -> few copies.
    for _ in range(max_iter):
        mid = math.sqrt(lo * hi) if lo > 0 else (lo + hi) / 2.0
        total = counts_for(mid).sum()
        if total >= budget:
            lo = mid
        else:
            hi = mid
        if hi - lo <= tol * max(1.0, lo):
            break
    multiplier = math.sqrt(lo * hi)
    counts = counts_for(multiplier)
    total = counts.sum()
    # Distribute any residual rounding mass over interior items so the
    # budget is met exactly (keeps downstream quantization well-posed).
    residual = budget - total
    if abs(residual) > 1e-12 * max(1.0, budget):
        interior = (counts > 0) & (counts < n_servers)
        if np.any(interior):
            counts[interior] += residual / interior.sum()
            counts = np.clip(counts, 0.0, float(n_servers))
    return RelaxedResult(counts=counts, multiplier=float(multiplier))
