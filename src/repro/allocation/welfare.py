"""Social-welfare computation: Eq. (1) of the paper and its special cases.

Welfare is the demand-weighted expected gain over all (item, client)
pairs.  Three entry points:

* :func:`homogeneous_welfare` — Eqs. (3) and (5): continuous-time contacts
  at a common rate ``mu``; welfare depends only on replica *counts*.
* :func:`homogeneous_welfare_discrete` — Eqs. (2) and (4): the slotted
  contact model; converges to the continuous value as ``delta -> 0``.
* :func:`heterogeneous_welfare` — Lemma 1 in full generality: a binary
  allocation matrix, per-pair contact rates, and per-node demand profiles.

The ``rate_floor`` argument regularizes unbounded-cost utilities
(``gain_never = -inf``) on traces where some pairs never meet: any
fulfillment rate below the floor is treated as the floor, i.e. delays
longer than ``1/rate_floor`` are indistinguishable.  ``0`` disables it.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from ..demand import DemandModel, validate_profile
from ..errors import AllocationError, ConfigurationError
from ..types import ArrayLike, FloatArray, IntArray
from ..utility import DelayUtility

#: ``G(x)``: per-request expected gain, scalar-in-scalar-out and
#: array-in-array-out (see :func:`item_gain_function`).
GainFunction = Callable[[ArrayLike], Union[float, FloatArray]]

__all__ = [
    "homogeneous_welfare",
    "homogeneous_welfare_discrete",
    "heterogeneous_welfare",
    "item_gain_function",
]


def _validate_counts(
    counts: FloatArray, n_items: int, n_servers: int
) -> FloatArray:
    counts = np.asarray(counts, dtype=float)
    if counts.shape != (n_items,):
        raise AllocationError(
            f"counts shape {counts.shape} != ({n_items},)"
        )
    if np.any(counts < 0) or np.any(counts > n_servers):
        raise AllocationError("replica counts must lie in [0, n_servers]")
    return counts


def item_gain_function(
    utility: DelayUtility,
    mu: float,
    *,
    pure_p2p: bool = False,
    n_clients: Optional[int] = None,
) -> GainFunction:
    """Return ``G(x)``: per-request expected gain with ``x`` replicas.

    Dedicated-node case (Eq. 3): ``G(x) = E[h(Y)]`` with ``Y ~ Exp(mu*x)``.
    Pure-P2P case (Eq. 5): the requester already holds the item with
    probability ``x/N``, gaining ``h(0+)`` immediately:
    ``G(x) = (x/N) h(0+) + (1 - x/N) E[h(Y)]``.

    The returned callable accepts scalars or numpy arrays of counts.
    """
    if mu <= 0:
        raise ConfigurationError(f"mu must be > 0, got {mu}")
    if not pure_p2p:

        def gain(x: ArrayLike) -> FloatArray:
            return utility.expected_gains(np.atleast_1d(np.asarray(x, float)) * mu)

        def gain_scalar_or_array(x: ArrayLike) -> Union[float, FloatArray]:
            result = gain(x)
            return float(result[0]) if np.ndim(x) == 0 else result

        return gain_scalar_or_array

    if n_clients is None:
        raise ConfigurationError("pure_p2p requires n_clients")
    if not utility.finite_at_zero:
        raise ConfigurationError(
            f"{utility.name} has h(0+) = inf; the paper restricts such "
            "utilities to the dedicated-node case"
        )
    h0 = utility.h0
    n = n_clients

    def gain_pure(x: ArrayLike) -> Union[float, FloatArray]:
        x_arr = np.atleast_1d(np.asarray(x, float))
        remote = utility.expected_gains(x_arr * mu)
        result = (x_arr / n) * h0 + (1.0 - x_arr / n) * remote
        return float(result[0]) if np.ndim(x) == 0 else result

    return gain_pure


def homogeneous_welfare(
    counts: FloatArray,
    demand: DemandModel,
    utility: DelayUtility,
    mu: float,
    n_servers: int,
    *,
    pure_p2p: bool = False,
    n_clients: Optional[int] = None,
    count_floor: float = 0.0,
) -> float:
    """Continuous-time homogeneous welfare, Eq. (3) / Eq. (5).

    *counts* may be fractional (the relaxed objective of Theorem 2).
    *count_floor* bounds counts away from zero before evaluation, keeping
    the welfare finite for unbounded-cost utilities when some item has no
    replica at all (e.g. under the DOM allocation).
    """
    counts = _validate_counts(counts, demand.n_items, n_servers)
    if count_floor > 0:
        counts = np.maximum(counts, count_floor)
    gain = item_gain_function(
        utility, mu, pure_p2p=pure_p2p, n_clients=n_clients
    )
    return float(np.sum(demand.rates * gain(counts)))


def homogeneous_welfare_discrete(
    counts: IntArray,
    demand: DemandModel,
    utility: DelayUtility,
    mu: float,
    n_servers: int,
    delta: float,
    *,
    pure_p2p: bool = False,
    n_clients: Optional[int] = None,
) -> float:
    """Discrete-time homogeneous welfare, Eq. (2) / Eq. (4).

    Per-slot failure probability with ``x`` replicas is ``(1 - mu*delta)**x``.
    """
    counts = _validate_counts(counts, demand.n_items, n_servers)
    if not 0 < mu * delta < 1:
        raise ConfigurationError(
            f"per-slot contact probability mu*delta = {mu * delta} not in (0, 1)"
        )
    if pure_p2p:
        if n_clients is None:
            raise ConfigurationError("pure_p2p requires n_clients")
        if not utility.finite_at_zero:
            raise ConfigurationError(
                f"{utility.name} has h(0+) = inf; dedicated-node only"
            )
    total = 0.0
    h_delta = float(utility(delta))
    for d, x in zip(demand.rates, counts):
        failure = (1.0 - mu * delta) ** x
        remote = utility.expected_gain_discrete(failure, delta)
        if pure_p2p:
            # Eq. (4): an immediate (own-cache) fulfillment gains h(delta).
            share = x / n_clients
            total += d * (share * h_delta + (1.0 - share) * remote)
        else:
            total += d * remote
    return float(total)


def heterogeneous_welfare(
    allocation: IntArray,
    demand: DemandModel,
    utility: DelayUtility,
    rate_matrix: FloatArray,
    *,
    pi: Optional[FloatArray] = None,
    server_of_client: Optional[IntArray] = None,
    rate_floor: float = 0.0,
) -> float:
    """General welfare via Lemma 1 (heterogeneous contacts, any profile).

    Parameters
    ----------
    allocation:
        Binary matrix ``(n_items, n_servers)``; ``allocation[i, m] = 1``
        iff server ``m`` caches item ``i``.
    rate_matrix:
        Contact intensities ``mu_{m,n}``, shape ``(n_servers, n_clients)``.
        For a pure-P2P population this is the symmetric pair-rate matrix.
    pi:
        Demand profile ``(n_items, n_clients)``; uniform when omitted.
    server_of_client:
        For each client, the server id of the *same physical node* (or
        ``-1`` if the client is not a server).  Requests by a node caching
        the item gain ``h(0+)`` immediately (the ``1 - x_{i,n}`` term of
        Lemma 1).  ``None`` means clients are never servers (dedicated).
    rate_floor:
        Lower bound applied to fulfillment rates (see module docstring).
    """
    allocation = np.asarray(allocation)
    n_items = demand.n_items
    rate_matrix = np.asarray(rate_matrix, dtype=float)
    if rate_matrix.ndim != 2:
        raise ConfigurationError("rate_matrix must be 2-D")
    n_servers, n_clients = rate_matrix.shape
    if allocation.shape != (n_items, n_servers):
        raise AllocationError(
            f"allocation shape {allocation.shape} != ({n_items}, {n_servers})"
        )
    if not np.isin(allocation, (0, 1)).all():
        raise AllocationError("allocation must be binary")
    if pi is None:
        weights = demand.rates[:, None] / n_clients
    else:
        pi = validate_profile(pi, n_items, n_clients)
        weights = demand.rates[:, None] * pi

    fulfill_rates = allocation @ rate_matrix  # (n_items, n_clients)
    if rate_floor > 0:
        fulfill_rates = np.maximum(fulfill_rates, rate_floor)
    gains = utility.expected_gains(fulfill_rates.ravel()).reshape(
        n_items, n_clients
    )
    if server_of_client is not None:
        server_of_client = np.asarray(server_of_client, dtype=np.int64)
        if server_of_client.shape != (n_clients,):
            raise ConfigurationError(
                "server_of_client must have one entry per client"
            )
        mapped = server_of_client >= 0
        if np.any(mapped):
            if not utility.finite_at_zero:
                raise ConfigurationError(
                    f"{utility.name} has h(0+) = inf; clients may not be "
                    "servers (dedicated-node case required)"
                )
            holds = allocation[:, server_of_client[mapped]] == 1
            cols = np.where(mapped)[0]
            gains[:, cols] = np.where(holds, utility.h0, gains[:, cols])
    return float(np.sum(weights * gains))
