"""Closed-form target allocations (Figure 2 and the Section-6 heuristics).

For the power delay-utility family, Property 1 yields the closed-form
relaxed optimum ``x_i ∝ d_i**(1/(2-alpha))`` (Figure 2): uniform in the
``alpha -> -inf`` limit, square-root at ``alpha = 0``, proportional at
``alpha = 1``, and increasingly winner-take-all as ``alpha -> 2``.

The same machinery builds the paper's fixed competitor allocations
(Section 6.1): **UNI**, **SQRT**, **PROP** and **DOM**.  All builders
return *fractional* counts summing to the cache budget with per-item cap
``n_servers``; :mod:`repro.allocation.quantize` turns them into integer
counts and concrete server placements.
"""

from __future__ import annotations

import numpy as np

from ..demand import DemandModel
from ..errors import AllocationError, ConfigurationError
from ..types import FloatArray

__all__ = [
    "power_allocation_exponent",
    "weighted_counts",
    "power_law_counts",
    "uniform_counts",
    "proportional_counts",
    "sqrt_counts",
    "dominant_counts",
]


def power_allocation_exponent(alpha: float) -> float:
    """The Figure-2 exponent: optimal ``x_i ∝ d_i**(1/(2-alpha))``."""
    if alpha >= 2:
        raise ConfigurationError(f"alpha must be < 2, got {alpha}")
    return 1.0 / (2.0 - alpha)


def weighted_counts(
    weights: FloatArray, budget: float, max_count: float
) -> FloatArray:
    """Distribute *budget* proportionally to *weights*, capping per item.

    Items that hit the ``max_count`` cap have their excess redistributed
    over the remaining items (water-filling), so the result sums to the
    budget exactly whenever ``budget <= n_items * max_count``.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 1 or len(weights) == 0:
        raise AllocationError("weights must be a non-empty 1-D array")
    if np.any(weights < 0) or not np.all(np.isfinite(weights)):
        raise AllocationError("weights must be finite and >= 0")
    if budget < 0:
        raise AllocationError(f"budget must be >= 0, got {budget}")
    if budget > len(weights) * max_count + 1e-9:
        raise AllocationError(
            f"budget {budget} exceeds capacity {len(weights) * max_count}"
        )
    counts = np.zeros(len(weights))
    capped = np.zeros(len(weights), dtype=bool)
    remaining = float(budget)
    for _ in range(len(weights)):
        free = ~capped
        total_weight = weights[free].sum()
        if remaining <= 1e-15 or total_weight <= 0:
            break
        share = weights * (remaining / total_weight)
        share[capped] = 0.0
        proposed = counts + share
        overflow = proposed > max_count
        if not np.any(overflow & free):
            counts = proposed
            remaining = 0.0
            break
        newly = overflow & free
        remaining -= float((max_count - counts[newly]).sum())
        counts[newly] = max_count
        capped |= newly
    if remaining > 1e-9 and np.any(~capped) and weights[~capped].sum() <= 0:
        # Zero-weight items absorb leftovers evenly (e.g. DOM with budget
        # larger than the dominated share).
        free = ~capped
        counts[free] += remaining / free.sum()
        counts = np.minimum(counts, max_count)
    return counts


def power_law_counts(
    demand: DemandModel, alpha: float, budget: float, max_count: float
) -> FloatArray:
    """Counts ``∝ d_i**(1/(2-alpha))`` water-filled to the budget."""
    exponent = power_allocation_exponent(alpha)
    return weighted_counts(demand.rates**exponent, budget, max_count)


def uniform_counts(
    n_items: int, budget: float, max_count: float
) -> FloatArray:
    """UNI: the budget divided evenly among all items."""
    if n_items <= 0:
        raise AllocationError(f"n_items must be > 0, got {n_items}")
    return weighted_counts(np.ones(n_items), budget, max_count)


def proportional_counts(
    demand: DemandModel, budget: float, max_count: float
) -> FloatArray:
    """PROP: counts proportional to demand (``alpha = 1`` power law)."""
    return weighted_counts(demand.rates, budget, max_count)


def sqrt_counts(
    demand: DemandModel, budget: float, max_count: float
) -> FloatArray:
    """SQRT: counts proportional to the square root of demand."""
    return weighted_counts(np.sqrt(demand.rates), budget, max_count)


def dominant_counts(
    demand: DemandModel, rho: int, n_servers: int
) -> FloatArray:
    """DOM: every node caches the ``rho`` most popular items."""
    if rho <= 0 or n_servers <= 0:
        raise AllocationError("rho and n_servers must be > 0")
    if rho > demand.n_items:
        raise AllocationError(
            f"rho = {rho} exceeds catalog size {demand.n_items}"
        )
    counts = np.zeros(demand.n_items)
    top = demand.ranked_items()[:rho]
    counts[top] = float(n_servers)
    return counts
