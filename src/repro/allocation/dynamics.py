"""Mean-field replica dynamics — Eq. (7) of the paper.

QCR's fluid limit: each fulfilled request for item ``i`` (rate ``d_i``)
creates ``psi(|S| / x_i)`` replicas, and every replica written erases a
uniformly random cached copy, so item ``i`` loses copies in proportion to
its share ``x_i / (rho |S|)`` of the global cache:

```
dx_i/dt = d_i psi(|S|/x_i) - (x_i / (rho |S|)) * sum_j d_j psi(|S|/x_j)
```

The stable fixed point satisfies the Property-1 balance condition when
``psi`` is the Property-2 reaction function — integrating this ODE next to
a simulation run is the ablation A1 of DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.integrate import solve_ivp

from ..demand import DemandModel
from ..errors import ConfigurationError
from ..types import FloatArray
from ..utility import DelayUtility
from .relaxed import solve_relaxed

__all__ = ["DynamicsResult", "replica_dynamics", "dynamics_equilibrium"]

#: Items are never driven below this fractional count (the simulator's
#: sticky replica plays the same role: no item ever fully disappears).
_X_FLOOR = 1e-6


@dataclass(frozen=True)
class DynamicsResult:
    """Trajectory of the Eq. (7) mean-field dynamics."""

    times: FloatArray
    #: Replica counts, shape ``(n_times, n_items)``.
    trajectory: FloatArray

    @property
    def final_counts(self) -> FloatArray:
        return self.trajectory[-1]


def replica_dynamics(
    x0: FloatArray,
    demand: DemandModel,
    utility: DelayUtility,
    mu: float,
    n_servers: int,
    rho: int,
    t_end: float,
    *,
    psi_scale: float = 1.0,
    n_eval: int = 200,
    rtol: float = 1e-7,
) -> DynamicsResult:
    """Integrate Eq. (7) from the initial counts *x0* until *t_end*.

    ``psi_scale`` multiplies the reaction function; it rescales time but
    not the equilibrium, mirroring the free constant of Property 2.
    """
    x0 = np.asarray(x0, dtype=float)
    if x0.shape != (demand.n_items,):
        raise ConfigurationError(
            f"x0 shape {x0.shape} != ({demand.n_items},)"
        )
    if np.any(x0 <= 0):
        raise ConfigurationError(
            "initial counts must be > 0 (Eq. (7) cannot recreate a lost item; "
            "the simulator's sticky replica guarantees the same)"
        )
    if t_end <= 0:
        raise ConfigurationError(f"t_end must be > 0, got {t_end}")
    rates = demand.rates

    def creation(x: FloatArray) -> FloatArray:
        return np.array(
            [
                d * psi_scale * utility.psi(n_servers / xi, n_servers, mu)
                for d, xi in zip(rates, x)
            ]
        )

    def rhs(_t: float, x: FloatArray) -> FloatArray:
        x = np.maximum(x, _X_FLOOR)
        created = creation(x)
        erased = x / (rho * n_servers) * created.sum()
        flow = created - erased
        # Box projection at the natural cap x_i <= |S|: with replication
        # "without rewriting" no new copy can be made of an item every
        # server already holds, so outward flow stops at the boundary.
        at_cap = x >= n_servers
        flow[at_cap] = np.minimum(flow[at_cap], 0.0)
        return flow

    solution = solve_ivp(
        rhs,
        (0.0, t_end),
        np.maximum(x0, _X_FLOOR),
        t_eval=np.linspace(0.0, t_end, n_eval),
        rtol=rtol,
        method="RK45",
    )
    if not solution.success:  # pragma: no cover - scipy failure
        raise ConfigurationError(f"ODE integration failed: {solution.message}")
    return DynamicsResult(times=solution.t, trajectory=solution.y.T)


def dynamics_equilibrium(
    demand: DemandModel,
    utility: DelayUtility,
    mu: float,
    n_servers: int,
    rho: int,
) -> FloatArray:
    """The stable fixed point of Eq. (7).

    At equilibrium creation balances erasure per item, which is exactly
    the Property-1 balance condition with total count ``rho * n_servers``
    — i.e. the relaxed optimal allocation.
    """
    result = solve_relaxed(
        demand, utility, mu, n_servers, budget=float(rho * n_servers)
    )
    return result.counts
