"""Heterogeneous optimal allocation — submodular greedy (Theorem 1, §6.1).

With arbitrary contact intensities the welfare is a submodular function of
the set of (server, item) placements (Theorem 1), and the per-server cache
capacity is a partition-matroid constraint, so the greedy of Nemhauser,
Wolsey & Fisher yields a ``(1 - 1/e)``-approximation — the paper's **OPT**
baseline for trace experiments.  On homogeneous inputs it recovers the
exact optimum of Theorem 2.

The implementation is lazy greedy (CELF): stale marginal gains stay in the
heap as upper bounds (submodularity guarantees marginals only shrink) and
are recomputed only when they surface.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..demand import DemandModel, validate_profile
from ..errors import ConfigurationError
from ..types import FloatArray, IntArray
from ..utility import DelayUtility
from .welfare import heterogeneous_welfare

__all__ = ["HeterogeneousProblem", "HeterogeneousResult", "greedy_heterogeneous"]


@dataclass(frozen=True)
class HeterogeneousProblem:
    """A cache-allocation instance with heterogeneous contacts.

    Attributes
    ----------
    demand:
        Per-item demand rates.
    utility:
        The delay-utility shared by all items.
    rate_matrix:
        Contact intensities ``mu_{m,n}``, shape ``(n_servers, n_clients)``.
    rho:
        Cache slots per server.
    pi:
        Demand profile ``(n_items, n_clients)``; uniform when ``None``.
    server_of_client:
        Same-node mapping as in
        :func:`~repro.allocation.welfare.heterogeneous_welfare`.
    rate_floor:
        Regularization for unbounded-cost utilities on sparse traces.
    """

    demand: DemandModel
    utility: DelayUtility
    rate_matrix: FloatArray
    rho: int
    pi: Optional[FloatArray] = None
    server_of_client: Optional[IntArray] = None
    rate_floor: float = 0.0

    def __post_init__(self) -> None:
        rates = np.asarray(self.rate_matrix, dtype=float)
        if rates.ndim != 2:
            raise ConfigurationError("rate_matrix must be 2-D")
        if np.any(rates < 0) or not np.all(np.isfinite(rates)):
            raise ConfigurationError("rates must be finite and >= 0")
        if self.rho <= 0:
            raise ConfigurationError(f"rho must be > 0, got {self.rho}")
        object.__setattr__(self, "rate_matrix", rates)
        if self.pi is not None:
            object.__setattr__(
                self,
                "pi",
                validate_profile(
                    self.pi, self.demand.n_items, rates.shape[1]
                ),
            )
        if self.server_of_client is not None:
            mapping = np.asarray(self.server_of_client, dtype=np.int64)
            if mapping.shape != (rates.shape[1],):
                raise ConfigurationError(
                    "server_of_client must have one entry per client"
                )
            if not self.utility.finite_at_zero and np.any(mapping >= 0):
                raise ConfigurationError(
                    f"{self.utility.name} has h(0+) = inf; clients may not "
                    "be servers"
                )
            object.__setattr__(self, "server_of_client", mapping)

    @property
    def n_servers(self) -> int:
        return self.rate_matrix.shape[0]

    @property
    def n_clients(self) -> int:
        return self.rate_matrix.shape[1]


@dataclass(frozen=True)
class HeterogeneousResult:
    """Outcome of the lazy submodular greedy."""

    allocation: IntArray
    welfare: float
    #: Number of marginal-gain evaluations performed (lazy-greedy savings).
    evaluations: int


def greedy_heterogeneous(
    problem: HeterogeneousProblem, *, lazy: bool = True
) -> HeterogeneousResult:
    """Run lazy greedy on *problem* and return the allocation matrix.

    ``lazy=False`` runs the textbook non-lazy greedy instead: every
    iteration re-evaluates the marginal gain of every feasible
    ``(item, server)`` placement and accepts the maximum (ties broken
    toward the smallest ``(item, server)`` pair — the same order the
    lazy heap uses).  Both variants pick the true argmax each step, so
    they return identical allocations; they differ only in
    ``evaluations``, which is what ``repro bench`` measures.
    """
    demand = problem.demand
    utility = problem.utility
    rates = problem.rate_matrix
    n_items, n_servers, n_clients = (
        demand.n_items,
        problem.n_servers,
        problem.n_clients,
    )
    if problem.pi is None:
        weights = demand.rates[:, None] / n_clients
    else:
        weights = demand.rates[:, None] * problem.pi

    floor = problem.rate_floor
    fulfill = np.zeros((n_items, n_clients))  # sum_m x_{i,m} mu_{m,n}

    def gains_of(rate_row: FloatArray) -> FloatArray:
        floored = np.maximum(rate_row, floor) if floor > 0 else rate_row
        return utility.expected_gains(floored)

    current_gains = np.tile(gains_of(np.zeros(n_clients)), (n_items, 1))
    holds = np.zeros((n_items, n_servers), dtype=bool)
    mapping = problem.server_of_client
    evaluations = 0

    def marginal(item: int, server: int) -> float:
        nonlocal evaluations
        evaluations += 1
        new_gains = gains_of(fulfill[item] + rates[server])
        if mapping is not None:
            # Clients co-located with a copy-holding server gain h(0+).
            local = holds[item, mapping[mapping >= 0]]
            cols = np.where(mapping >= 0)[0]
            new_gains = new_gains.copy()
            new_gains[cols[local]] = utility.h0
            own = np.where(mapping == server)[0]
            if len(own):
                new_gains[own] = utility.h0
        delta = new_gains - current_gains[item]
        return float(np.sum(weights[item] * delta))

    # Effective-gain convention: replace +/-inf by huge finite sentinels so
    # heap ordering stays defined for unbounded-cost first copies.
    def finite(value: float) -> float:
        if value == np.inf:
            return 1e300
        if value == -np.inf:
            return -1e300
        return value

    version = np.zeros(n_items, dtype=np.int64)
    loads = np.zeros(n_servers, dtype=np.int64)
    budget = problem.rho * n_servers

    def accept(item: int, server: int) -> None:
        holds[item, server] = True
        fulfill[item] += rates[server]
        current_gains[item] = gains_of(fulfill[item])
        if mapping is not None:
            local_cols = np.where(mapping >= 0)[0]
            local_holds = holds[item, mapping[local_cols]]
            current_gains[item][local_cols[local_holds]] = utility.h0
        loads[server] += 1
        version[item] += 1

    placed = 0
    if lazy:
        heap = []
        for item in range(n_items):
            for server in range(n_servers):
                heap.append(
                    (-finite(marginal(item, server)), item, server, 0)
                )
        heapq.heapify(heap)
        while placed < budget and heap:
            neg_gain, item, server, stamp = heapq.heappop(heap)
            if holds[item, server] or loads[server] >= problem.rho:
                continue
            if -neg_gain <= 0:
                break  # no remaining placement improves welfare
            if stamp != version[item]:
                gain = finite(marginal(item, server))
                heapq.heappush(
                    heap, (-gain, item, server, int(version[item]))
                )
                continue
            # Fresh entry: accept.
            accept(item, server)
            placed += 1
    else:
        while placed < budget:
            best_gain = -np.inf
            best_item = best_server = -1
            for item in range(n_items):
                for server in range(n_servers):
                    if holds[item, server] or loads[server] >= problem.rho:
                        continue
                    gain = finite(marginal(item, server))
                    if gain > best_gain:
                        best_gain = gain
                        best_item, best_server = item, server
            if best_item < 0 or best_gain <= 0:
                break
            accept(best_item, best_server)
            placed += 1

    allocation = holds.astype(np.int8)
    welfare = heterogeneous_welfare(
        allocation,
        demand,
        utility,
        rates,
        pi=problem.pi,
        server_of_client=problem.server_of_client,
        rate_floor=floor,
    )
    return HeterogeneousResult(
        allocation=allocation, welfare=welfare, evaluations=evaluations
    )
