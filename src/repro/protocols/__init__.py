"""Replication protocols: QCR, fixed allocations, passive replication."""

from .base import ReplicationProtocol
from .passive import PassiveReplication
from .qcr import QCR, QCRConfig
from .static import (
    StaticAllocation,
    dom_protocol,
    opt_protocol,
    prop_protocol,
    sqrt_protocol,
    uni_protocol,
)

__all__ = [
    "ReplicationProtocol",
    "QCR",
    "QCRConfig",
    "PassiveReplication",
    "StaticAllocation",
    "uni_protocol",
    "sqrt_protocol",
    "prop_protocol",
    "dom_protocol",
    "opt_protocol",
]
