"""Fixed-allocation competitors (paper Section 6.1).

These protocols model an idealized system with a perfect control channel:
the global cache is set to the desired allocation at time zero "precisely
and without restriction" and never changes.  The engine then only serves
requests from it.  Builders for the paper's five competitors:

* :func:`uni_protocol` — memory evenly allocated among all items;
* :func:`sqrt_protocol` — proportional to the square root of demand;
* :func:`prop_protocol` — proportional to demand;
* :func:`dom_protocol` — all nodes cache the ``rho`` most popular items;
* :func:`opt_protocol` — the Theorem-2 greedy optimum (homogeneous), or
  any precomputed allocation matrix (e.g. the submodular greedy on a
  trace's rate matrix) via :class:`StaticAllocation` directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from ..allocation import (
    dominant_counts,
    greedy_homogeneous,
    place_copies,
    proportional_counts,
    quantize_counts,
    sqrt_counts,
    uniform_counts,
)
from ..demand import DemandModel
from ..errors import ConfigurationError
from ..types import FloatArray, IntArray
from ..utility import DelayUtility
from .base import ReplicationProtocol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Simulation

__all__ = [
    "StaticAllocation",
    "uni_protocol",
    "sqrt_protocol",
    "prop_protocol",
    "dom_protocol",
    "opt_protocol",
]


class StaticAllocation(ReplicationProtocol):
    """A protocol that pins the global cache to a fixed allocation.

    Construct with either integer per-item *counts* (placed onto servers
    by the engine's RNG at initialization) or a full binary *allocation*
    matrix in server-position order.
    """

    def __init__(
        self,
        *,
        counts: Optional[IntArray] = None,
        allocation: Optional[IntArray] = None,
        name: str = "static",
    ) -> None:
        if (counts is None) == (allocation is None):
            raise ConfigurationError(
                "provide exactly one of counts/allocation"
            )
        self._counts = (
            np.asarray(counts, dtype=np.int64) if counts is not None else None
        )
        self._allocation = (
            np.asarray(allocation) if allocation is not None else None
        )
        self.name = name

    def initialize(self, sim: "Simulation") -> None:
        if self._allocation is not None:
            sim.set_initial_allocation(self._allocation)
            return
        allocation = place_copies(
            self._counts, sim.n_servers, sim.config.rho, seed=sim.rng
        )
        sim.set_initial_allocation(allocation)


def _quantized(
    fractional: FloatArray, budget: int, n_servers: int
) -> IntArray:
    return quantize_counts(fractional, budget, n_servers)


def uni_protocol(
    demand: DemandModel, n_servers: int, rho: int
) -> StaticAllocation:
    """UNI: the cache budget divided evenly among all items."""
    budget = rho * n_servers
    counts = _quantized(
        uniform_counts(demand.n_items, budget, n_servers), budget, n_servers
    )
    return StaticAllocation(counts=counts, name="UNI")


def sqrt_protocol(
    demand: DemandModel, n_servers: int, rho: int
) -> StaticAllocation:
    """SQRT: allocation proportional to the square root of demand."""
    budget = rho * n_servers
    counts = _quantized(
        sqrt_counts(demand, budget, n_servers), budget, n_servers
    )
    return StaticAllocation(counts=counts, name="SQRT")


def prop_protocol(
    demand: DemandModel, n_servers: int, rho: int
) -> StaticAllocation:
    """PROP: allocation proportional to demand."""
    budget = rho * n_servers
    counts = _quantized(
        proportional_counts(demand, budget, n_servers), budget, n_servers
    )
    return StaticAllocation(counts=counts, name="PROP")


def dom_protocol(
    demand: DemandModel, n_servers: int, rho: int
) -> StaticAllocation:
    """DOM: every node caches the ``rho`` most popular items."""
    counts = dominant_counts(demand, rho, n_servers).astype(np.int64)
    return StaticAllocation(counts=counts, name="DOM")


def opt_protocol(
    demand: DemandModel,
    utility: DelayUtility,
    mu: float,
    n_servers: int,
    rho: int,
    *,
    pure_p2p: bool = False,
    n_clients: Optional[int] = None,
) -> StaticAllocation:
    """OPT: the Theorem-2 greedy optimum under homogeneous contacts.

    For heterogeneous (trace) scenarios, run
    :func:`repro.allocation.greedy_heterogeneous` and wrap its allocation
    matrix in :class:`StaticAllocation` instead.
    """
    result = greedy_homogeneous(
        demand,
        utility,
        mu,
        n_servers,
        rho,
        pure_p2p=pure_p2p,
        n_clients=n_clients,
    )
    return StaticAllocation(counts=result.counts, name="OPT")
