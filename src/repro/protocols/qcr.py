"""Query Counting Replication with Mandate Routing (paper Section 5).

QCR is reactive and purely local: each outstanding request carries a query
counter that increments once per meeting; when the request is finally
fulfilled after ``y`` queries, the node creates ``psi(y)`` *replication
mandates* for the item, where ``psi`` is the Property-2 reaction function
derived from the delay-utility.  Since the expected counter is
``|S| / x_i``, the creation rate self-tunes to the current allocation
without any estimator or control channel.

Mandates execute opportunistically: a node holding both a mandate and a
cached copy of the item replicates it into the cache of a met node that
lacks it (random replacement, *no rewriting* — meeting a node that already
holds the item is ignored and the mandate retained).  Because execution
requires co-location of mandate and copy, raw QCR can stall: **mandate
routing** (Section 5.3) moves mandates toward copy holders at every
contact — all to the unique holder, an even split when both or neither
hold the item, and a 2/3 share to the item's sticky node when both hold a
copy.  ``mandate_routing=False`` reproduces the divergent QCRWOM variant
of Figure 3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..sim.seeding import seed_allocation
from ..types import IntArray
from ..utility import DelayUtility
from .base import ReplicationProtocol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Simulation
    from ..sim.node import NodeState

__all__ = ["QCRConfig", "QCR"]


@dataclass(frozen=True)
class QCRConfig:
    """Tunables of the QCR protocol.

    Attributes
    ----------
    mandate_routing:
        Move mandates toward copy holders at every contact (Section 5.3).
        Disabling reproduces the pathological QCRWOM of Figure 3.
    pure_correction:
        Use the exact pure-P2P reaction function when every client is
        also a server.  Requests that a node can serve from its own cache
        are fulfilled immediately and create no mandates, thinning item
        ``i``'s replica creation by ``(1 - x_i/N)``; matching the
        pure-P2P optimum (Eq. 5) then requires
        ``psi(y) = x*phi(x) + (x/N) * L(mu*x) / (1 - x/N)`` with
        ``x = |S|/y`` and ``L`` the Laplace transform of ``c`` (this is
        the paper's TR "similar table ... for the pure P2P case"; the
        dedicated-case ``psi`` of Table 1 is its large-``N`` limit).
        Disabling falls back to the Table-1 reaction everywhere.
    psi_scale:
        Free multiplicative constant of the reaction function (Property 2
        fixes ``psi`` only up to a constant); larger values converge
        faster at the price of more replication churn and allocation
        variance (the welfare is concave, so variance costs utility).
    cache_on_fulfill:
        The requester stores the received item in its own cache (random
        replacement), consuming one mandate — Section 5.3's premise that
        the node desiring to replicate initially possesses the item.
        With ``False`` the received content is consumed but not cached,
        and mandates start at a non-holder.
    pull_execution:
        Allow a mandate to execute by *pulling* a copy from a met holder
        into the mandate owner's cache, in addition to pushing from an
        owned copy.  Pulling lets mandates execute anywhere, which makes
        mandate routing unnecessary — an ablation showing that routing
        specifically repairs push-only replication.
    sticky_share:
        Fraction of an item's mandates routed to its sticky node when
        both met nodes hold a copy (the paper uses 2/3).
    max_mandates_per_request:
        Safety cap on mandates created by a single fulfillment; ``None``
        leaves the reaction function uncapped.
    max_replications_per_contact:
        Bandwidth limit: at most this many replicas may be created per
        contact per direction (``None`` = one per item, unlimited items).
        Tight limits slow the draining of mandate batches, which makes
        the stranding pathology of Figure 3 more severe.
    adaptive_mu:
        Estimate the meeting rate per node from its own observed contact
        count instead of trusting the global ``mu`` constant — still
        purely local information.  On heterogeneous traces the constant
        is wrong for well/poorly connected nodes, skewing their reaction
        functions; adaptation corrects it (extension E4, see
        ``benchmarks/bench_extension_adaptive_mu.py``).
    min_rate_observations:
        Contacts a node must have seen before its own estimate replaces
        the global constant (only with ``adaptive_mu``).
    """

    mandate_routing: bool = True
    pure_correction: bool = True
    psi_scale: float = 1.0
    cache_on_fulfill: bool = True
    pull_execution: bool = False
    max_replications_per_contact: Optional[int] = None
    adaptive_mu: bool = False
    min_rate_observations: int = 20
    sticky_share: float = 2.0 / 3.0
    max_mandates_per_request: Optional[int] = None

    def __post_init__(self) -> None:
        if self.psi_scale <= 0:
            raise ConfigurationError("psi_scale must be > 0")
        if not 0.5 <= self.sticky_share <= 1.0:
            raise ConfigurationError("sticky_share must be in [0.5, 1]")
        if (
            self.max_mandates_per_request is not None
            and self.max_mandates_per_request < 1
        ):
            raise ConfigurationError("max_mandates_per_request must be >= 1")
        if (
            self.max_replications_per_contact is not None
            and self.max_replications_per_contact < 1
        ):
            raise ConfigurationError(
                "max_replications_per_contact must be >= 1"
            )
        if self.min_rate_observations < 1:
            raise ConfigurationError("min_rate_observations must be >= 1")


class QCR(ReplicationProtocol):
    """Query Counting Replication (Section 5).

    Parameters
    ----------
    utility:
        The delay-utility defining the reaction function; the protocol
        needs nothing else about the workload.
    mu:
        The (assumed) homogeneous meeting rate used in ``psi`` — the only
        global constant QCR relies on, as in the paper's Table 1 tuning.
    config:
        Protocol tunables; defaults reproduce the paper's setup.
    """

    def __init__(
        self,
        utility: DelayUtility,
        mu: float,
        config: QCRConfig = QCRConfig(),
    ) -> None:
        if mu <= 0:
            raise ConfigurationError(f"mu must be > 0, got {mu}")
        self.utility = utility
        self.mu = mu
        self.config = config
        self.name = "QCR" if config.mandate_routing else "QCRWOM"
        # Per-contact hot flags, hoisted out of the frozen config.
        self._routing: bool = config.mandate_routing
        self._adaptive_mu: bool = config.adaptive_mu
        self._cache_on_fulfill: bool = config.cache_on_fulfill
        self._mandate_cap: Optional[float] = (
            None
            if config.max_mandates_per_request is None
            else float(config.max_mandates_per_request)
        )
        self._pure: bool = False  # resolved at initialize()
        #: Per-node observed contact counts (adaptive_mu state).
        self._contact_counts: Dict[int, int] = {}
        # Without adaptive_mu the hook needs no per-contact bookkeeping,
        # so the engine may skip it entirely on mandate-free contacts.
        self.contact_hook_idle_without_mandates = not config.adaptive_mu
        # Both hooks only ever touch the mandate tables of the nodes
        # they are handed (on_fulfill: the requester; after_contact:
        # the two endpoints — routing moves mandates strictly between
        # them), so the engine may track mandate presence with a
        # running per-node count instead of reading the tables on
        # every contact.
        self.mandates_touch_only_hook_nodes = True
        #: Final-counter -> capped reaction target.  Valid because without
        #: adaptive_mu the reaction depends only on the counter and on
        #: per-run constants (``mu``, ``n_servers``, the pure correction);
        #: reset at initialize() since those constants are per-run.
        # y -> (floor(target), fractional remainder): the randomized
        # rounding inputs, precomputed so the on_fulfill hot path skips
        # a math.floor per fulfillment.
        self._reaction_memo: Dict[int, Tuple[int, float]] = {}

    # ------------------------------------------------------------------
    # protocol hooks
    # ------------------------------------------------------------------
    def initialize(self, sim: "Simulation") -> None:
        allocation, sticky = seed_allocation(
            sim.config.n_items,
            sim.server_ids,
            sim.config.rho,
            seed=sim.rng,
        )
        sim.set_initial_allocation(allocation, sticky_owner=sticky)
        self._reaction_memo.clear()
        self._pure = (
            self.config.pure_correction
            and self.utility.finite_at_zero
            and len(sim.client_ids) == sim.n_servers
            and bool(np.all(sim.client_ids == sim.server_ids))
        )

    def local_rate(self, sim: "Simulation", node_id: int, now: float) -> float:
        """The meeting-rate constant used in *node_id*'s reaction.

        With ``adaptive_mu``, a node that has observed enough contacts
        uses its own maximum-likelihood per-pair rate
        ``contacts / (t * (n - 1))``; otherwise the global constant.
        """
        if not self.config.adaptive_mu or now <= 0:
            return self.mu
        observed = self._contact_counts.get(node_id, 0)
        if observed < self.config.min_rate_observations:
            return self.mu
        return observed / (now * (len(sim.nodes) - 1))

    def reaction(
        self,
        y: float,
        sim: "Simulation",
        *,
        mu: Optional[float] = None,
    ) -> float:
        """The reaction value ``psi(y)`` used for a final query count *y*.

        Applies the pure-P2P correction when configured and applicable
        (every client also a server, finite ``h(0+)``).  *mu* overrides
        the protocol constant (adaptive estimation).
        """
        rate = self.mu if mu is None else mu
        n_servers = sim.n_servers
        value = self.utility.psi(y, n_servers, rate)
        if self._pure:
            n = n_servers
            # The correction's 1/(1 - x/N) explodes for the noisy one-sample
            # estimate x = |S|/y at y = 1; clamping the estimator to y >= 2
            # bounds it at 1/(1 - |S|/2N) with negligible bias (verified in
            # tests/protocols/test_qcr_equilibrium.py).
            x = n_servers / max(y, 2.0)
            thin = 1.0 - x / n
            value += (x / n) * self.utility.laplace_c(rate * x) / thin
        return self.config.psi_scale * value

    def on_fulfill(
        self,
        sim: "Simulation",
        t: float,
        requester: "NodeState",
        provider: "NodeState",
        item: int,
        counter: int,
    ) -> None:
        y = counter if counter > 1 else 1
        if self._adaptive_mu:
            target = self.reaction(
                y, sim, mu=self.local_rate(sim, requester.node_id, t)
            )
            if self._mandate_cap is not None:
                target = min(target, self._mandate_cap)
            mandates = self._randomized_round(target, sim.rng)
        else:
            memo = self._reaction_memo
            entry = memo.get(y)
            if entry is None:
                target = self.reaction(y, sim)
                if self._mandate_cap is not None:
                    target = min(target, self._mandate_cap)
                base = math.floor(target)
                entry = (int(base), target - base)
                memo[y] = entry
            # Inlined ``_randomized_round``: identical draw condition,
            # so the RNG stream is untouched.
            mandates, fraction = entry
            if fraction > 0 and sim.rng.random() < fraction:
                mandates += 1
        if mandates <= 0:
            return
        # New mandates start at the requester — the "node of origin" of
        # Section 5.3.  With cache_on_fulfill the received copy enters the
        # requester's cache, executing the first mandate on the spot; the
        # rest push outward from that copy while it survives random
        # replacement.  If it is evicted first, the leftover mandates are
        # stranded — unless mandate routing carries them to surviving copy
        # holders (the Figure-3 pathology and its fix).
        if self._cache_on_fulfill and sim.insert_copy(requester, item):
            mandates -= 1
        if mandates > 0:
            requester.mandates[item] = (
                requester.mandates.get(item, 0) + mandates
            )

    def after_contact(
        self, sim: "Simulation", t: float, a: "NodeState", b: "NodeState"
    ) -> None:
        if self._adaptive_mu:
            counts = self._contact_counts
            counts[a.node_id] = counts.get(a.node_id, 0) + 1
            counts[b.node_id] = counts.get(b.node_id, 0) + 1
        if not a.mandates and not b.mandates:
            # Neither execution nor routing has anything to act on, and
            # both are no-ops (no state, no RNG) without mandates — the
            # common case on the vast majority of contacts.
            return
        self._execute(sim, a, b)
        self._execute(sim, b, a)
        if self._routing:
            self._route(sim, a, b)

    def mandate_totals(self, sim: "Simulation") -> IntArray:
        totals = np.zeros(sim.config.n_items, dtype=np.int64)
        for node in sim.nodes:
            for item, count in node.mandates.items():
                totals[item] += count
        return totals

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _randomized_round(value: float, rng: np.random.Generator) -> int:
        """Unbiased integer rounding: floor plus a Bernoulli remainder."""
        base = math.floor(value)
        fraction = value - base
        if fraction > 0 and rng.random() < fraction:
            base += 1
        return int(base)

    def _execute(
        self, sim: "Simulation", owner: "NodeState", peer: "NodeState"
    ) -> None:
        """Execute eligible mandates of *owner* at a contact with *peer*.

        A mandate for an item needs a replica to execute: when the owner
        caches the item it *pushes* a copy into a peer lacking it; when
        only the peer caches it, the owner *pulls* a copy into its own
        cache.  At most one copy of each item is created per contact.
        "No rewriting": if the would-be receiver already holds the item
        nothing happens and the mandate is retained — which is exactly
        why, without routing, mandates for items the owner neither holds
        nor encounters pile up (Figure 3).
        """
        if not owner.mandates:
            return
        budget = self.config.max_replications_per_contact
        executed: Optional[List[int]] = None
        for item, count in owner.mandates.items():
            if budget is not None and budget <= 0:
                break
            if count <= 0:
                continue
            if owner.has_item(item):
                created = sim.insert_copy(peer, item)
            elif self.config.pull_execution and peer.has_item(item):
                created = sim.insert_copy(owner, item)
            else:
                continue
            if not created:
                continue  # receiver already holds it (or slots pinned)
            if budget is not None:
                budget -= 1
            if executed is None:
                executed = [item]
            else:
                executed.append(item)
        if executed is None:
            return
        for item in executed:
            remaining = owner.mandates[item] - 1
            if remaining > 0:
                owner.mandates[item] = remaining
            else:
                del owner.mandates[item]

    def _route(
        self, sim: "Simulation", a: "NodeState", b: "NodeState"
    ) -> None:
        """Move mandates toward copy holders (Section 5.3).

        For every item with pending mandates at either node: the unique
        copy holder takes all of them; when both (or neither) hold a
        copy, mandates split evenly — except that an item's sticky node
        takes the ``sticky_share`` when both hold a copy.
        """
        if not a.mandates and not b.mandates:
            return
        items = set(a.mandates)
        items.update(b.mandates)
        rng = sim.rng
        # Sorted so the per-item RNG draws below happen in a fixed
        # order; bare set iteration would tie the trajectory to hash
        # layout (flagged by RPA001).
        for item in sorted(items):
            count_a = a.mandates.get(item, 0)
            count_b = b.mandates.get(item, 0)
            total = count_a + count_b
            if total == 0:
                continue
            has_a = a.has_item(item)
            has_b = b.has_item(item)
            if has_a and not has_b:
                new_a, new_b = total, 0
            elif has_b and not has_a:
                new_a, new_b = 0, total
            else:
                sticky = sim.sticky_node_of(item)
                if has_a and has_b and sticky == a.node_id:
                    new_a = int(round(self.config.sticky_share * total))
                    new_b = total - new_a
                elif has_a and has_b and sticky == b.node_id:
                    new_b = int(round(self.config.sticky_share * total))
                    new_a = total - new_b
                else:
                    new_a = total // 2
                    new_b = total - new_a
                    if new_a != new_b and rng.random() < 0.5:
                        new_a, new_b = new_b, new_a
            _set_mandates(a, item, new_a)
            _set_mandates(b, item, new_b)


def _set_mandates(node: "NodeState", item: int, count: int) -> None:
    if count > 0:
        node.mandates[item] = count
    else:
        node.mandates.pop(item, None)
