"""Passive replication: one replica per fulfilled request.

The baseline the paper's related-work discussion attributes to podcast
dissemination systems [14]: whenever a request is fulfilled, the requester
simply caches the received item (one replica), with random replacement.
At equilibrium this drives the allocation toward proportional-to-demand —
optimal only at the negative-logarithm impatience level (``alpha = 1``),
and the reason PROP "gives too much weight to popular items" elsewhere.

Equivalent to QCR with a constant reaction function ``psi = 1``, but
implemented standalone since it needs no counters or mandates at all.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim.seeding import seed_allocation
from .base import ReplicationProtocol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Simulation
    from ..sim.node import NodeState

__all__ = ["PassiveReplication"]


class PassiveReplication(ReplicationProtocol):
    """Cache-on-fulfill replication with random replacement."""

    name = "PASSIVE"

    def initialize(self, sim: "Simulation") -> None:
        allocation, sticky = seed_allocation(
            sim.config.n_items,
            sim.server_ids,
            sim.config.rho,
            seed=sim.rng,
        )
        sim.set_initial_allocation(allocation, sticky_owner=sticky)

    def on_fulfill(
        self,
        sim: "Simulation",
        t: float,
        requester: "NodeState",
        provider: "NodeState",
        item: int,
        counter: int,
    ) -> None:
        if requester.is_server:
            sim.insert_copy(requester, item)
