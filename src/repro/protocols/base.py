"""Replication-protocol interface.

A protocol owns two things: the initial placement of content on servers,
and the reaction to simulation events (request fulfillments and node
contacts).  The engine calls the hooks below; protocols mutate caches only
through :meth:`repro.sim.engine.Simulation.insert_copy`, which keeps the
engine's replica accounting consistent.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Optional

from ..types import IntArray

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Simulation
    from ..sim.node import NodeState

__all__ = ["ReplicationProtocol"]


class ReplicationProtocol(ABC):
    """Base class for replication strategies."""

    #: Display name used in experiment reports (e.g. "QCR", "SQRT").
    name: str = "protocol"

    #: Opt-in engine fast path: when ``True`` the engine may skip the
    #: :meth:`after_contact` call on contacts where neither endpoint has
    #: pending mandates.  Only set this if the hook is a guaranteed no-op
    #: (no state updates, no RNG draws) in that situation.
    contact_hook_idle_without_mandates: bool = False

    @abstractmethod
    def initialize(self, sim: "Simulation") -> None:
        """Set the initial global cache state.

        Implementations call ``sim.set_initial_allocation(allocation,
        sticky_owner=...)`` exactly once.
        """

    def on_fulfill(
        self,
        sim: "Simulation",
        t: float,
        requester: "NodeState",
        provider: "NodeState",
        item: int,
        counter: int,
    ) -> None:
        """A request by *requester* for *item* was just fulfilled.

        *counter* is the final query-counter value (number of server
        meetings since the request was created, including this one).
        """

    def after_contact(
        self, sim: "Simulation", t: float, a: "NodeState", b: "NodeState"
    ) -> None:
        """Called once per contact after fulfillments are processed."""

    def mandate_totals(self, sim: "Simulation") -> Optional[IntArray]:
        """Per-item outstanding mandate counts, or ``None`` if stateless."""
        return None
