"""Fault injection: node churn, replica loss, and contact drops.

See :mod:`repro.faults.schedule` for the event model and
``docs/fault_injection.md`` for the experiment guide.
"""

from .schedule import FAULT_KINDS, FaultEvent, FaultSchedule

__all__ = ["FAULT_KINDS", "FaultEvent", "FaultSchedule"]
