"""Timed fault events and the schedules that generate them.

A :class:`FaultSchedule` is a seeded, immutable, time-sorted sequence of
:class:`FaultEvent` objects plus two run-wide fault parameters (the
probabilistic contact-drop rate and the sticky-replica loss policy).  The
engine merges the schedule into its event loop as a third stream next to
contacts and requests, so faults interleave with ordinary events at exact
times and the whole run stays deterministic: the same schedule (same
seed) against the same trace, requests, and simulation seed produces an
identical :class:`~repro.sim.metrics.SimulationResult`.

Schedules compose: ``churn + losses`` merges two schedules into one,
which is how an experiment combines, say, a background replica-loss
process with a mass crash wave.

Three event kinds model the failure modes of an opportunistic network:

``crash``
    The node goes offline (its contacts and requests are skipped) and —
    with ``wipe_cache`` — its cached replicas are destroyed, modelling a
    device reset.  Whether the node's *sticky* replica survives the wipe
    is the schedule's explicit ``sticky_survives`` policy: with ``True``
    (default) the paper's no-extinction guarantee is preserved; with
    ``False`` items can go extinct, which is exactly the regime where
    reactive schemes (QCR) and static allocations (OPT) diverge.  With
    ``lose_mandates`` any pending QCR mandates at the node vanish too.
``recover``
    The node comes back online with whatever cache contents survived.
``replica_loss``
    One replica disappears (bit-rot, storage failure).  The target may
    be pinned to a ``(node, item)`` pair or left unresolved, in which
    case the engine picks a uniformly random non-sticky replica using
    the schedule's runtime RNG.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..types import SeedLike

__all__ = ["FaultEvent", "FaultSchedule", "FAULT_KINDS"]

#: The recognized event kinds.
FAULT_KINDS = ("crash", "recover", "replica_loss")


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault.

    Attributes
    ----------
    time:
        When the fault fires (simulation time).  Events at the same time
        as a contact or request are applied *before* it.
    kind:
        One of :data:`FAULT_KINDS`.
    node:
        The affected node id; required for ``crash``/``recover``,
        optional for ``replica_loss`` (``None`` = random holder).
    item:
        For ``replica_loss`` only: the item to lose (``None`` = random
        non-sticky replica at the resolved node).
    wipe_cache:
        ``crash`` only: destroy the node's cached replicas.
    lose_mandates:
        ``crash`` only: drop the node's pending QCR mandates.
    """

    time: float
    kind: str
    node: Optional[int] = None
    item: Optional[int] = None
    wipe_cache: bool = True
    lose_mandates: bool = True

    def __post_init__(self) -> None:
        if not math.isfinite(self.time) or self.time < 0:
            raise ConfigurationError(
                f"fault time must be finite and >= 0, got {self.time}"
            )
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.kind in ("crash", "recover") and self.node is None:
            raise ConfigurationError(f"{self.kind!r} event needs a node id")
        if self.node is not None and self.node < 0:
            raise ConfigurationError(f"fault node id must be >= 0, got {self.node}")
        if self.item is not None and self.item < 0:
            raise ConfigurationError(f"fault item id must be >= 0, got {self.item}")


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, composable schedule of fault events.

    Attributes
    ----------
    events:
        The fault events; stored sorted by time (stable order for ties).
    drop_prob:
        Probability that any individual contact silently fails (the two
        nodes meet but the exchange does not complete).  Drawn from the
        schedule's runtime RNG, so it never perturbs the simulation's
        own randomness stream.
    sticky_survives:
        Whether sticky replicas survive cache wipes (see module docs).
    seed:
        Seed of the runtime RNG used for contact drops and random
        replica-loss resolution.  Fixed default keeps unseeded schedules
        deterministic.
    """

    events: Tuple[FaultEvent, ...] = ()
    drop_prob: float = 0.0
    sticky_survives: bool = True
    seed: SeedLike = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_prob < 1.0:
            raise ConfigurationError(
                f"drop_prob must be in [0, 1), got {self.drop_prob}"
            )
        ordered = tuple(
            sorted(self.events, key=lambda event: event.time)
        )
        object.__setattr__(self, "events", ordered)

    # ------------------------------------------------------------------
    # inspection / composition
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def runtime_rng(self) -> np.random.Generator:
        """A fresh RNG for the schedule's runtime randomness."""
        return np.random.default_rng(self.seed)

    def merge(self, other: "FaultSchedule") -> "FaultSchedule":
        """Combine two schedules into one.

        Events are pooled and re-sorted; drop probabilities compose as
        independent failure processes (``1 - (1-p)(1-q)``); the sticky
        policies must agree (the policy is global, so a silent pick
        would hide a modelling decision); the left operand's seed wins.
        """
        if self.sticky_survives != other.sticky_survives:
            raise ConfigurationError(
                "cannot merge schedules with conflicting sticky_survives"
            )
        return FaultSchedule(
            events=self.events + other.events,
            drop_prob=1.0 - (1.0 - self.drop_prob) * (1.0 - other.drop_prob),
            sticky_survives=self.sticky_survives,
            seed=self.seed,
        )

    def __add__(self, other: "FaultSchedule") -> "FaultSchedule":
        return self.merge(other)

    # ------------------------------------------------------------------
    # builders
    # ------------------------------------------------------------------
    @classmethod
    def crash_wave(
        cls,
        time: float,
        nodes: Iterable[int],
        *,
        recover_at: Optional[float] = None,
        wipe_cache: bool = True,
        lose_mandates: bool = True,
        sticky_survives: bool = True,
        drop_prob: float = 0.0,
        seed: SeedLike = 0,
    ) -> "FaultSchedule":
        """Crash every node in *nodes* at *time*; optionally recover all.

        The mass-failure scenario of the robustness benchmarks: a
        correlated outage (power loss, venue evacuation) takes a whole
        set of devices down at once.
        """
        node_list = sorted(set(int(n) for n in nodes))
        if not node_list:
            raise ConfigurationError("crash_wave needs at least one node")
        if recover_at is not None and recover_at <= time:
            raise ConfigurationError(
                f"recover_at ({recover_at}) must be after the crash ({time})"
            )
        events = [
            FaultEvent(
                time=time,
                kind="crash",
                node=node,
                wipe_cache=wipe_cache,
                lose_mandates=lose_mandates,
            )
            for node in node_list
        ]
        if recover_at is not None:
            events.extend(
                FaultEvent(time=recover_at, kind="recover", node=node)
                for node in node_list
            )
        return cls(
            events=tuple(events),
            drop_prob=drop_prob,
            sticky_survives=sticky_survives,
            seed=seed,
        )

    @classmethod
    def node_churn(
        cls,
        n_nodes: int,
        *,
        crash_rate: float,
        mean_downtime: float,
        duration: float,
        seed: SeedLike = 0,
        nodes: Optional[Sequence[int]] = None,
        wipe_cache: bool = True,
        lose_mandates: bool = True,
        sticky_survives: bool = True,
        drop_prob: float = 0.0,
    ) -> "FaultSchedule":
        """Memoryless per-node churn over ``[0, duration]``.

        Each node alternates exponential up-times (rate *crash_rate*)
        and exponential down-times (mean *mean_downtime*), the standard
        ON/OFF churn model of P2P availability studies.  Fully
        determined by *seed*.
        """
        if n_nodes <= 0:
            raise ConfigurationError(f"n_nodes must be > 0, got {n_nodes}")
        if crash_rate <= 0:
            raise ConfigurationError(f"crash_rate must be > 0, got {crash_rate}")
        if mean_downtime <= 0:
            raise ConfigurationError(
                f"mean_downtime must be > 0, got {mean_downtime}"
            )
        if duration <= 0:
            raise ConfigurationError(f"duration must be > 0, got {duration}")
        pool = (
            range(n_nodes)
            if nodes is None
            else sorted(set(int(n) for n in nodes))
        )
        rng = np.random.default_rng(seed)
        events = []
        for node in pool:
            if not 0 <= node < n_nodes:
                raise ConfigurationError(f"churn node id {node} out of range")
            t = float(rng.exponential(1.0 / crash_rate))
            while t < duration:
                events.append(
                    FaultEvent(
                        time=t,
                        kind="crash",
                        node=node,
                        wipe_cache=wipe_cache,
                        lose_mandates=lose_mandates,
                    )
                )
                t += float(rng.exponential(mean_downtime))
                if t >= duration:
                    break
                events.append(FaultEvent(time=t, kind="recover", node=node))
                t += float(rng.exponential(1.0 / crash_rate))
        return cls(
            events=tuple(events),
            drop_prob=drop_prob,
            sticky_survives=sticky_survives,
            seed=seed,
        )

    @classmethod
    def replica_loss(
        cls,
        *,
        rate: float,
        duration: float,
        seed: SeedLike = 0,
        sticky_survives: bool = True,
        drop_prob: float = 0.0,
    ) -> "FaultSchedule":
        """Poisson-timed random replica losses over ``[0, duration]``.

        Each event destroys one uniformly random non-sticky replica
        somewhere in the network (resolved at execution time, so losses
        track the *current* allocation).
        """
        if rate <= 0:
            raise ConfigurationError(f"rate must be > 0, got {rate}")
        if duration <= 0:
            raise ConfigurationError(f"duration must be > 0, got {duration}")
        rng = np.random.default_rng(seed)
        events = []
        t = float(rng.exponential(1.0 / rate))
        while t < duration:
            events.append(FaultEvent(time=t, kind="replica_loss"))
            t += float(rng.exponential(1.0 / rate))
        return cls(
            events=tuple(events),
            drop_prob=drop_prob,
            sticky_survives=sticky_survives,
            seed=seed,
        )
